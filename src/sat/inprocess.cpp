// Inter-restart inprocessing (Solver::inprocess and its passes).
//
// Three simplification passes run between restarts under a shared tick
// budget, in dependency order:
//
//  1. Equivalent-literal substitution: Tarjan SCC over the binary
//     implication graph; every literal in an SCC is replaced by the SCC's
//     minimum-code representative. Instead of a model-reconstruction map,
//     each substituted variable keeps two permanent "definition binaries"
//     (~v | r) and (v | ~r) in the original clause set, so models,
//     assumptions, and cores remain valid verbatim - and every rewritten
//     clause is RUP through those binaries, keeping DRAT proofs checkable.
//  2. Subsumption / self-subsuming resolution over occurrence lists with
//     64-bit signatures (simplify_util.h). Binaries are never targets
//     (which also shields the definition binaries); subsumed clauses are
//     deleted, SSR removes one flipped literal at a time.
//  3. Vivification: re-derive each clause under assumed negations of its
//     own literals; propagation conflicts and satisfied prefixes yield
//     strictly shorter replacements.
//
// Every rewrite emits DRAT add lines *before* the delete of the clause it
// replaces, so an attached Proof stays forward-checkable. All passes run at
// decision level 0 with root reasons cleared; no clause is pinned, and the
// commit paths filter root-assigned literals so freshly attached watches
// always sit on unassigned literals.
#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "sat/simplify_util.h"
#include "sat/solver.h"

namespace olsq2::sat {

namespace {

// Fault-injection hook for the fuzz harness: when set, vivification drops
// one literal without justification, exactly once per round. The DRAT
// checker / differential oracle must flag the unsound rewrite; this is how
// the oracle proves it can catch a real inprocessing bug. Read per round,
// never cached.
bool vivify_bug_requested() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read at a quiescent pass
  // boundary; nothing in-process calls setenv concurrently.
  const char* v = std::getenv("OLSQ2_FUZZ_INJECT_VIVIFY_BUG");
  return v != nullptr && *v != '\0' && std::string_view(v) != "0";
}

}  // namespace

bool Solver::assert_root_unit(Lit l) {
  assert(decision_level() == 0);
  if (!ok_) return false;
  const LBool v = value(l);
  if (v == LBool::kTrue) return true;
  if (v == LBool::kFalse) {
    ok_ = false;
    if (proof_ != nullptr) proof_->add({});
    return false;
  }
  const std::size_t trail_before = trail_.size();
  enqueue(l, kCRefUndef);
  if (propagate() != kCRefUndef) {
    ok_ = false;
    if (proof_ != nullptr) proof_->add({});
    return false;
  }
  // propagate() installed clause reasons for the literals it derived; a
  // later rewrite in the same round may free those clauses, so mirror the
  // reason clearing done at inprocess() entry (nothing ever inspects a
  // level-0 reason).
  for (std::size_t i = trail_before; i < trail_.size(); ++i) {
    reasons_[trail_[i].var()] = kCRefUndef;
  }
  return true;
}

bool Solver::inprocess() {
  if (!ok_) return false;
  obs::Span span("sat.inprocess");
  cancel_until(0);
  // Pending export spans would dangle across rewrites; hand them off first.
  flush_pending_exports();
  if (propagate() != kCRefUndef) {
    ok_ = false;
    if (proof_ != nullptr) proof_->add({});
    return false;
  }
  // Root-level reason refs would pin clauses against rewriting and dangle
  // after it; nothing ever inspects a level-0 reason (conflict analysis
  // stops above level 0), so clear them up front.
  for (const Lit l : trail_) reasons_[l.var()] = kCRefUndef;
  stats_.inprocess_rounds++;
  const Stats before = stats_;
  std::uint64_t ticks = inprocess_budget_;

  namespace m = obs::metrics;
  m::Histogram* hist[3] = {nullptr, nullptr, nullptr};
  if (m::enabled()) {
    m::Registry& reg = m::Registry::instance();
    static m::Histogram& equiv_ms = reg.histogram(
        "sat_inprocess_pass_ms", "Inprocessing pass latency (milliseconds)",
        {{"pass", "equiv"}});
    static m::Histogram& subsume_ms = reg.histogram(
        "sat_inprocess_pass_ms", "Inprocessing pass latency (milliseconds)",
        {{"pass", "subsume"}});
    static m::Histogram& vivify_ms = reg.histogram(
        "sat_inprocess_pass_ms", "Inprocessing pass latency (milliseconds)",
        {{"pass", "vivify"}});
    hist[0] = &equiv_ms;
    hist[1] = &subsume_ms;
    hist[2] = &vivify_ms;
  }
  using PassFn = bool (Solver::*)(std::uint64_t&);
  constexpr PassFn kPasses[3] = {&Solver::inprocess_equiv,
                                 &Solver::inprocess_subsume,
                                 &Solver::inprocess_vivify};
  for (int p = 0; p < 3 && ok_ && ticks > 0; ++p) {
    const auto t0 = std::chrono::steady_clock::now();
    (this->*kPasses[p])(ticks);
    if (hist[p] != nullptr) {
      hist[p]->observe(std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count());
    }
  }
  maybe_collect_garbage();
  audit_invariants("inprocess");
  if (span.live()) {
    const Stats d = stats_ - before;
    span.arg("strengthened_lits", d.inprocess_strengthened_lits);
    span.arg("removed_clauses", d.inprocess_removed_clauses);
    span.arg("equiv_vars", d.equiv_vars);
    span.arg("budget_left", ticks);
  }
  return ok_;
}

bool Solver::inprocess_equiv(std::uint64_t& ticks) {
  assert(decision_level() == 0);
  const auto compact = [this] {
    for (auto* list :
         {&clauses_, &learnts_core_, &learnts_tier2_, &learnts_local_}) {
      std::erase_if(*list,
                    [this](CRef cr) { return arena_[cr].freed(); });
    }
  };

  // Binary implication graph over literal codes: clause (a | b) yields the
  // edges ~a -> b and ~b -> a. Assigned and already-substituted variables
  // are excluded - their equivalences are either decided or already linked.
  const std::size_t nlits = static_cast<std::size_t>(2 * num_vars());
  std::vector<std::vector<std::int32_t>> succ(nlits);
  for (const auto* list :
       {&clauses_, &learnts_core_, &learnts_tier2_, &learnts_local_}) {
    for (const CRef cr : *list) {
      const ClauseData& c = arena_[cr];
      if (c.size() != 2) continue;
      const Lit a = c[0];
      const Lit b = c[1];
      if (value(a) != LBool::kUndef || value(b) != LBool::kUndef) continue;
      if (substituted_[a.var()] != 0 || substituted_[b.var()] != 0) continue;
      succ[static_cast<std::size_t>((~a).code())].push_back(b.code());
      succ[static_cast<std::size_t>((~b).code())].push_back(a.code());
      if (ticks > 0) ticks--;
    }
  }

  // Iterative Tarjan SCC.
  std::vector<std::int32_t> index(nlits, -1);
  std::vector<std::int32_t> low(nlits, 0);
  std::vector<std::uint8_t> on_stack(nlits, 0);
  std::vector<std::int32_t> scc_stack;
  std::vector<std::vector<std::int32_t>> comps;
  struct Frame {
    std::int32_t node;
    std::size_t next_child;
  };
  std::vector<Frame> dfs;
  std::int32_t next_index = 0;
  for (std::size_t root = 0; root < nlits; ++root) {
    if (index[root] != -1 || succ[root].empty()) continue;
    const auto rc = static_cast<std::int32_t>(root);
    index[root] = low[root] = next_index++;
    scc_stack.push_back(rc);
    on_stack[root] = 1;
    dfs.push_back({rc, 0});
    while (!dfs.empty()) {
      Frame& f = dfs.back();
      const auto n = static_cast<std::size_t>(f.node);
      if (f.next_child < succ[n].size()) {
        const std::int32_t child = succ[n][f.next_child++];
        const auto ci = static_cast<std::size_t>(child);
        if (index[ci] == -1) {
          index[ci] = low[ci] = next_index++;
          scc_stack.push_back(child);
          on_stack[ci] = 1;
          dfs.push_back({child, 0});  // invalidates f; loop re-fetches
        } else if (on_stack[ci] != 0) {
          low[n] = std::min(low[n], index[ci]);
        }
        continue;
      }
      dfs.pop_back();
      if (!dfs.empty()) {
        const auto parent = static_cast<std::size_t>(dfs.back().node);
        low[parent] = std::min(low[parent], low[n]);
      }
      if (low[n] == index[n]) {
        comps.emplace_back();
        while (true) {
          const std::int32_t mcode = scc_stack.back();
          scc_stack.pop_back();
          on_stack[static_cast<std::size_t>(mcode)] = 0;
          comps.back().push_back(mcode);
          if (mcode == f.node) break;
        }
      }
    }
  }

  // Pick pairs. Each variable belongs to two complementary SCCs (one per
  // sign, complement-closed); handle the one whose minimum-code
  // representative is positive so every equivalence is processed once.
  struct EquivPair {
    Lit from;
    Lit rep;
  };
  std::vector<EquivPair> pairs;
  for (const auto& members : comps) {
    if (members.size() < 2) continue;
    const std::int32_t rep_code =
        *std::min_element(members.begin(), members.end());
    if ((rep_code & 1) != 0) continue;  // complement SCC handles this one
    // l and ~l in one SCC: the formula forces l == ~l, i.e. root UNSAT.
    std::vector<std::int32_t> sorted = members;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 1; i < sorted.size(); ++i) {
      if (sorted[i] == (sorted[i - 1] ^ 1)) {
        const Lit rep = Lit::from_code(rep_code);
        if (proof_ != nullptr) {
          proof_->add({rep});   // RUP: ~rep propagates around the cycle
          proof_->add({~rep});  // RUP against the unit just added
          proof_->add({});
        }
        ok_ = false;
        compact();
        return false;
      }
    }
    const Lit rep = Lit::from_code(rep_code);
    for (const std::int32_t mcode : members) {
      if (mcode == rep_code) continue;
      pairs.push_back({Lit::from_code(mcode), rep});
    }
  }

  // Install the substitution and the definition binaries. All additions
  // happen before any rewrite so every rewritten clause is RUP through the
  // complete equivalence system.
  for (const EquivPair& p : pairs) {
    substituted_[p.from.var()] = 1;
    subst_map_[static_cast<std::size_t>(p.from.code())] = p.rep;
    subst_map_[static_cast<std::size_t>((~p.from).code())] = ~p.rep;
    const Lit fwd[2] = {~p.from, p.rep};  // from -> rep
    const Lit bwd[2] = {p.from, ~p.rep};  // rep -> from
    for (const auto* bin : {&fwd, &bwd}) {
      if (proof_ != nullptr) proof_->add({(*bin)[0], (*bin)[1]});
      const CRef cr =
          arena_.alloc(std::span<const Lit>(*bin, 2), /*learnt=*/false, 0,
                       Tier::kCore);
      attach(cr);
      clauses_.push_back(cr);
      num_original_clauses_++;
      stats_.binary_clauses++;
    }
  }
  stats_.equiv_vars += pairs.size();

  // Rewrite every clause touching a substituted or root-assigned variable.
  // Representatives chain strictly downward in literal code across rounds,
  // so fixpoint chasing terminates.
  const auto map_lit = [this](Lit l) {
    Lit mapped = subst_map_[static_cast<std::size_t>(l.code())];
    while (subst_map_[static_cast<std::size_t>(mapped.code())] != mapped) {
      mapped = subst_map_[static_cast<std::size_t>(mapped.code())];
    }
    return mapped;
  };
  Clause img;
  for (auto* list :
       {&clauses_, &learnts_core_, &learnts_tier2_, &learnts_local_}) {
    const bool original_list = list == &clauses_;
    for (std::size_t i = 0; i < list->size(); ++i) {
      const CRef cr = (*list)[i];
      {
        const ClauseData& c = arena_[cr];
        if (c.freed()) continue;
        bool touched = false;
        for (const Lit l : c.literals()) {
          if (substituted_[l.var()] != 0 || value(l) != LBool::kUndef) {
            touched = true;
            break;
          }
        }
        if (!touched) continue;
        if (ticks > 0) ticks--;
        img.clear();
        bool satisfied = false;
        for (const Lit l : c.literals()) {
          const Lit mapped = map_lit(l);
          if (value(mapped) == LBool::kTrue) {
            satisfied = true;
            break;
          }
          if (value(mapped) == LBool::kFalse) continue;
          img.push_back(mapped);
        }
        if (satisfied || !simplify::normalize(img)) {
          // Satisfied at root or tautological under the equivalence.
          // Originals are kept verbatim - in particular the definition
          // binaries, whose images are tautologies, must survive so models
          // of the rewritten formula stay models of the input.
          if (!original_list) {
            drop_clause(cr);
            stats_.inprocess_removed_clauses++;
          }
          continue;
        }
      }
      // Commit the rewritten image (DRAT add precedes the delete).
      const ClauseData& c = arena_[cr];
      const std::uint32_t old_size = c.size();
      const bool learnt = c.learnt();
      const unsigned old_lbd = c.lbd();
      const Tier tier = c.tier();
      const float act = c.activity();
      const unsigned used = c.used();
      if (proof_ != nullptr) proof_->add(img);
      if (img.empty()) {
        ok_ = false;
        if (!learnt) num_original_clauses_--;
        drop_clause(cr);
        compact();
        return false;
      }
      if (img.size() == 1) {
        if (!learnt) num_original_clauses_--;
        drop_clause(cr);
        stats_.inprocess_strengthened_lits += old_size - 1;
        if (!assert_root_unit(img[0])) {
          compact();
          return false;
        }
        continue;
      }
      const CRef nr = arena_.alloc(
          img, learnt,
          learnt ? std::min<unsigned>(old_lbd,
                                      static_cast<unsigned>(img.size()))
                 : 0,
          tier);
      {
        ClauseData& nc = arena_[nr];
        nc.set_activity(act);
        nc.set_used(used);
      }
      attach(nr);
      drop_clause(cr);
      (*list)[i] = nr;
      if (img.size() < old_size) {
        stats_.inprocess_strengthened_lits += old_size - img.size();
      }
      if (img.size() == 2) stats_.binary_clauses++;
    }
  }
  compact();
  return ok_;
}

bool Solver::inprocess_subsume(std::uint64_t& ticks) {
  assert(decision_level() == 0);
  // Besides dropping freed refs, migrate clauses promoted to irredundant
  // mid-pass (a learnt subsumer that replaced an original keeps its tier
  // slot until here so Entry slots stay stable) into clauses_.
  const auto compact = [this] {
    for (auto* list : {&learnts_core_, &learnts_tier2_, &learnts_local_}) {
      std::erase_if(*list, [this](CRef cr) {
        const ClauseData& c = arena_[cr];
        if (c.freed()) return true;
        if (!c.learnt()) {
          clauses_.push_back(cr);
          return true;
        }
        return false;
      });
    }
    std::erase_if(clauses_,
                  [this](CRef cr) { return arena_[cr].freed(); });
  };

  // Flat index of every live clause plus occurrence lists. Entries track
  // their containing list slot so strengthening can swap in the new ref.
  struct Entry {
    CRef cr;
    std::vector<CRef>* list;
    std::size_t slot;
    std::uint64_t sig;
  };
  std::vector<Entry> entries;
  const std::size_t nlits = static_cast<std::size_t>(2 * num_vars());
  std::vector<std::vector<std::uint32_t>> occ(nlits);
  for (auto* list :
       {&clauses_, &learnts_core_, &learnts_tier2_, &learnts_local_}) {
    for (std::size_t i = 0; i < list->size(); ++i) {
      const CRef cr = (*list)[i];
      const ClauseData& c = arena_[cr];
      if (c.freed()) continue;
      const auto id = static_cast<std::uint32_t>(entries.size());
      entries.push_back({cr, list, i, simplify::clause_signature(c.literals())});
      for (const Lit l : c.literals()) {
        occ[static_cast<std::size_t>(l.code())].push_back(id);
      }
      if (ticks > 0) ticks--;
    }
  }

  std::vector<std::uint8_t> mark(nlits, 0);
  Clause sub, result;
  constexpr std::uint32_t kMaxSubsumerSize = 20;
  bool out_of_budget = false;
  for (std::uint32_t ci = 0; ci < entries.size() && ok_ && !out_of_budget;
       ++ci) {
    if (ticks == 0) break;
    {
      const ClauseData& c = arena_[entries[ci].cr];
      if (c.freed() || c.size() > kMaxSubsumerSize) continue;
      sub.assign(c.lits(), c.lits() + c.size());
    }
    const std::uint64_t csig = entries[ci].sig;
    // Pivot: the literal with the fewest occurrences (both phases count -
    // the flipped phase is where self-subsumption candidates live).
    Lit pivot = sub[0];
    std::size_t best = static_cast<std::size_t>(-1);
    for (const Lit l : sub) {
      const std::size_t occs =
          occ[static_cast<std::size_t>(l.code())].size() +
          occ[static_cast<std::size_t>((~l).code())].size();
      if (occs < best) {
        best = occs;
        pivot = l;
      }
    }
    for (const int side : {0, 1}) {
      if (out_of_budget || !ok_) break;
      const Lit p = side == 0 ? pivot : ~pivot;
      for (const std::uint32_t di : occ[static_cast<std::size_t>(p.code())]) {
        if (ticks == 0) {
          out_of_budget = true;
          break;
        }
        ticks--;
        if (di == ci) continue;
        Entry& de = entries[di];
        if (!simplify::signature_subset(csig, de.sig)) continue;
        Lit flip = kUndefLit;
        bool fits = true;
        {
          const ClauseData& d = arena_[de.cr];
          // Binaries are never targets: strengthening or deleting a
          // definition binary would sever an equivalence link.
          if (d.freed() || d.size() < 3 || d.size() < sub.size()) continue;
          for (const Lit l : d.literals()) {
            mark[static_cast<std::size_t>(l.code())] = 1;
          }
          for (const Lit l : sub) {
            if (mark[static_cast<std::size_t>(l.code())] != 0) continue;
            if (mark[static_cast<std::size_t>((~l).code())] != 0 &&
                flip.is_undef()) {
              flip = ~l;  // l occurs flipped in d: SSR candidate
              continue;
            }
            fits = false;
            break;
          }
          for (const Lit l : d.literals()) {
            mark[static_cast<std::size_t>(l.code())] = 0;
          }
        }
        if (!fits) continue;
        if (flip.is_undef()) {
          // sub subsumes d outright. When d is irredundant, the formula's
          // strength now rests on sub alone, so a learnt sub is promoted to
          // irredundant first - otherwise a later reduce_db() could evict
          // it and leave the formula weaker than the input. The promoted
          // clause keeps its tier slot until compact() moves it to clauses_.
          if (!arena_[de.cr].learnt()) {
            ClauseData& s = arena_[entries[ci].cr];
            if (s.learnt()) {
              s.clear_learnt();
              s.set_tier(Tier::kCore);
              num_original_clauses_++;
            }
            num_original_clauses_--;
          }
          drop_clause(de.cr);
          stats_.inprocess_removed_clauses++;
          continue;
        }
        // Self-subsuming resolution: d loses `flip`. Root-assigned
        // literals are filtered so the replacement attaches cleanly.
        result.clear();
        bool satisfied = false;
        std::uint32_t old_size = 0;
        bool learnt = false;
        unsigned old_lbd = 0;
        Tier tier = Tier::kCore;
        float act = 0.0f;
        unsigned used = 0;
        {
          const ClauseData& d = arena_[de.cr];
          old_size = d.size();
          learnt = d.learnt();
          old_lbd = d.lbd();
          tier = d.tier();
          act = d.activity();
          used = d.used();
          for (const Lit l : d.literals()) {
            if (l == flip) continue;
            if (value(l) == LBool::kTrue) {
              satisfied = true;
              break;
            }
            if (value(l) == LBool::kFalse) continue;
            result.push_back(l);
          }
        }
        if (satisfied) continue;  // leave satisfied targets alone
        std::sort(result.begin(), result.end());
        if (proof_ != nullptr) proof_->add(result);
        if (result.empty()) {
          ok_ = false;
          break;
        }
        if (result.size() == 1) {
          if (!learnt) num_original_clauses_--;
          drop_clause(de.cr);
          stats_.inprocess_strengthened_lits += old_size - 1;
          if (!assert_root_unit(result[0])) break;
          continue;
        }
        const CRef nr = arena_.alloc(
            result, learnt,
            learnt ? std::min<unsigned>(old_lbd,
                                        static_cast<unsigned>(result.size()))
                   : 0,
            tier);
        {
          ClauseData& nc = arena_[nr];
          nc.set_activity(act);
          nc.set_used(used);
        }
        attach(nr);
        drop_clause(de.cr);
        (*de.list)[de.slot] = nr;
        de.cr = nr;
        de.sig = simplify::clause_signature(result);
        stats_.inprocess_strengthened_lits += old_size - result.size();
        if (result.size() == 2) stats_.binary_clauses++;
      }
    }
  }
  compact();
  return ok_;
}

bool Solver::inprocess_vivify(std::uint64_t& ticks) {
  assert(decision_level() == 0);
  const auto compact = [this] {
    for (auto* list :
         {&clauses_, &learnts_core_, &learnts_tier2_, &learnts_local_}) {
      std::erase_if(*list,
                    [this](CRef cr) { return arena_[cr].freed(); });
    }
  };
  const bool inject = vivify_bug_requested();
  bool injected = false;
  Clause lits, result;
  bool out_of_budget = false;
  // Core first: glue clauses propagate most, so shortening them pays most.
  for (auto* list :
       {&learnts_core_, &learnts_tier2_, &clauses_, &learnts_local_}) {
    if (out_of_budget || !ok_) break;
    for (std::size_t i = 0; i < list->size(); ++i) {
      if (ticks == 0) {
        out_of_budget = true;
        break;
      }
      if (!ok_) break;
      const CRef cr = (*list)[i];
      std::uint32_t old_size = 0;
      bool learnt = false;
      unsigned old_lbd = 0;
      Tier tier = Tier::kCore;
      float act = 0.0f;
      unsigned used = 0;
      {
        const ClauseData& c = arena_[cr];
        if (c.freed() || c.size() < 3) continue;
        lits.assign(c.lits(), c.lits() + c.size());
        old_size = c.size();
        learnt = c.learnt();
        old_lbd = c.lbd();
        tier = c.tier();
        act = c.activity();
        used = c.used();
      }
      // Root-value filter first: satisfied learnts are deleted, root-false
      // literals never enter the probe.
      bool satisfied = false;
      {
        std::size_t out = 0;
        for (const Lit l : lits) {
          if (value(l) == LBool::kTrue) {
            satisfied = true;
            break;
          }
          if (value(l) == LBool::kFalse) continue;
          lits[out++] = l;
        }
        if (!satisfied) lits.resize(out);
      }
      if (satisfied) {
        if (learnt) {
          drop_clause(cr);
          stats_.inprocess_removed_clauses++;
        }
        continue;
      }
      bool detached = false;
      if (inject && !injected && lits.size() == old_size && lits.size() >= 3) {
        // Injected fault (see vivify_bug_requested): unjustified drop.
        result.assign(lits.begin(), lits.end() - 1);
        injected = true;
      } else if (lits.size() >= 3) {
        // Probe: assume the negation of each literal in turn; conflicts and
        // satisfied tails prove a strictly shorter clause. The clause is
        // detached so it cannot propagate on itself.
        detach(cr);
        detached = true;
        result.clear();
        new_decision_level();
        for (std::size_t k = 0; k < lits.size(); ++k) {
          const Lit l = lits[k];
          const LBool v = value(l);
          if (v == LBool::kTrue) {
            // ~(result so far) propagates l: clause shrinks to result + l.
            result.push_back(l);
            break;
          }
          if (v == LBool::kFalse) continue;  // ~(result so far) implies ~l
          result.push_back(l);
          if (k + 1 == lits.size()) break;  // last literal: nothing to gain
          enqueue(~l, kCRefUndef);
          const std::uint64_t p0 = stats_.propagations;
          const CRef confl = propagate();
          ticks -= std::min(ticks, stats_.propagations - p0 + 1);
          if (confl != kCRefUndef) break;  // ~(result) is contradictory
          if (ticks == 0) {
            // Budget: keep the untested tail; drops so far stay justified.
            result.insert(result.end(), lits.begin() + k + 1, lits.end());
            out_of_budget = true;
            break;
          }
        }
        cancel_until(0);
      } else {
        result = lits;  // root-filter alone shortened it below 3
      }
      const auto remove_old = [&] {
        ClauseData& oc = arena_[cr];
        if (proof_ != nullptr) {
          proof_->remove(Clause(oc.lits(), oc.lits() + oc.size()));
        }
        if (detached) {
          detached = false;
        } else {
          detach(cr);
        }
        arena_.free_clause(cr);
      };
      if (result.size() == old_size) {
        if (detached) attach(cr);  // unchanged
        continue;
      }
      if (proof_ != nullptr) proof_->add(result);
      if (result.empty()) {
        ok_ = false;
        if (!learnt) num_original_clauses_--;
        remove_old();
        compact();
        return false;
      }
      if (result.size() == 1) {
        if (!learnt) num_original_clauses_--;
        remove_old();
        stats_.inprocess_strengthened_lits += old_size - 1;
        if (!assert_root_unit(result[0])) {
          compact();
          return false;
        }
        continue;
      }
      const CRef nr = arena_.alloc(
          result, learnt,
          learnt ? std::min<unsigned>(old_lbd,
                                      static_cast<unsigned>(result.size()))
                 : 0,
          tier);
      {
        ClauseData& nc = arena_[nr];
        nc.set_activity(act);
        nc.set_used(used);
      }
      attach(nr);
      remove_old();
      (*list)[i] = nr;
      stats_.inprocess_strengthened_lits += old_size - result.size();
      if (result.size() == 2) stats_.binary_clauses++;
    }
  }
  compact();
  return ok_;
}

}  // namespace olsq2::sat
