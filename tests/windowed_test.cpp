// Tests for the windowed hybrid synthesizer.
#include <gtest/gtest.h>

#include "bengen/workloads.h"
#include "device/presets.h"
#include "layout/tb.h"
#include "layout/windowed.h"
#include "satmap/satmap.h"

namespace olsq2::layout {
namespace {

TEST(Windowed, SingleWindowMatchesTbOptimum) {
  // With everything in one window, the hybrid *is* TB-OLSQ2.
  const auto c = bengen::qaoa_3regular(6, 2);
  const auto dev = device::grid(2, 3);
  const Problem problem{&c, &dev, 1};
  const Result exact = tb_synthesize_swap_optimal(problem);
  ASSERT_TRUE(exact.solved);
  WindowedOptions options;
  options.gates_per_window = 1000;
  const WindowedResult hybrid = synthesize_windowed_swap(problem, options);
  ASSERT_TRUE(hybrid.solved);
  EXPECT_EQ(hybrid.window_count, 1);
  EXPECT_EQ(hybrid.swap_count, exact.swap_count);
}

TEST(Windowed, SmallerWindowsNeverBeatGlobalOptimum) {
  for (const std::uint64_t seed : {1ULL, 3ULL}) {
    const auto c = bengen::qaoa_3regular(6, seed);
    const auto dev = device::grid(2, 3);
    const Problem problem{&c, &dev, 1};
    const Result exact = tb_synthesize_swap_optimal(problem);
    ASSERT_TRUE(exact.solved);
    WindowedOptions options;
    options.gates_per_window = 3;
    const WindowedResult hybrid = synthesize_windowed_swap(problem, options);
    ASSERT_TRUE(hybrid.solved);
    EXPECT_GT(hybrid.window_count, 1);
    EXPECT_GE(hybrid.swap_count, exact.swap_count) << "seed " << seed;
  }
}

TEST(Windowed, MappingsChainConsistently) {
  const auto c = bengen::qaoa_3regular(8, 4);
  const auto dev = device::grid(3, 3);
  const Problem problem{&c, &dev, 1};
  WindowedOptions options;
  options.gates_per_window = 4;
  const WindowedResult r = synthesize_windowed_swap(problem, options);
  ASSERT_TRUE(r.solved);
  ASSERT_EQ(static_cast<int>(r.window_mappings.size()), r.window_count);
  // Every window entry mapping (and the final one) is injective.
  auto injective = [&](const std::vector<int>& m) {
    std::vector<bool> used(dev.num_qubits(), false);
    for (const int p : m) {
      if (p < 0 || p >= dev.num_qubits() || used[p]) return false;
      used[p] = true;
    }
    return true;
  };
  for (const auto& m : r.window_mappings) EXPECT_TRUE(injective(m));
  EXPECT_TRUE(injective(r.final_mapping));
}

TEST(Windowed, ScalesToLargeQuekoCircuits) {
  // A 200-gate QUEKO circuit: whole-circuit exact synthesis would need a
  // large model; windows keep each SAT instance small. The planted global
  // optimum is 0 swaps; window-local choices may deviate (the first window
  // can pick a zero-swap mapping that does not extend), so assert a small
  // bound rather than exact optimality - the point is scalability with
  // near-optimal quality.
  const auto dev = device::rigetti_aspen4();
  bengen::QuekoSpec spec;
  spec.depth = 20;
  spec.gate_count = 200;
  spec.seed = 5;
  const auto c = bengen::queko(dev, spec);
  const Problem problem{&c, &dev, 3};
  WindowedOptions options;
  options.gates_per_window = 40;
  options.time_budget_ms = 120000;
  const WindowedResult r = synthesize_windowed_swap(problem, options);
  ASSERT_TRUE(r.solved);
  EXPECT_GT(r.window_count, 2);
  // Windows of several dependency layers must not lose to per-layer
  // slicing (the SATMap-style mapper) on the same instance.
  satmap::SatmapOptions slicer;
  slicer.time_budget_ms = 120000;
  const satmap::SatmapResult sliced = satmap::route(problem, slicer);
  if (sliced.solved) {
    EXPECT_LE(r.swap_count, sliced.swap_count);
  }
}

TEST(Windowed, EmptyCircuit) {
  circuit::Circuit c(3, "empty");
  const auto dev = device::grid(1, 3);
  const Problem problem{&c, &dev, 1};
  const WindowedResult r = synthesize_windowed_swap(problem);
  EXPECT_TRUE(r.solved);
  EXPECT_EQ(r.window_count, 0);
  EXPECT_EQ(r.swap_count, 0);
}

}  // namespace
}  // namespace olsq2::layout
