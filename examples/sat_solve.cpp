// Standalone DIMACS SAT solver CLI over the library's CDCL engine - the
// substrate that replaces Z3's SAT core in this reproduction. Useful for
// cross-checking exported layout-synthesis instances with other solvers.
//
//   $ ./sat_solve <file.cnf> [--proof] [--preprocess] [--budget-ms N]
//
// Prints "s SATISFIABLE" + a "v" model line, or "s UNSATISFIABLE" (with a
// self-checked DRAT refutation when --proof is given), or "s UNKNOWN".
// --preprocess applies SatELite-style simplification first (models are
// reconstructed; incompatible with --proof).
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "sat/dimacs.h"
#include "sat/drat_check.h"
#include "sat/preprocess.h"
#include "sat/proof.h"
#include "sat/solver.h"

int main(int argc, char** argv) {
  using namespace olsq2::sat;
  if (argc < 2) {
    std::cerr << "usage: " << argv[0] << " <file.cnf> [--proof] [--budget-ms N]\n";
    return 2;
  }
  bool want_proof = false;
  bool want_preprocess = false;
  double budget_ms = 0;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--proof") == 0) {
      want_proof = true;
    } else if (std::strcmp(argv[i], "--preprocess") == 0) {
      want_preprocess = true;
    } else if (std::strcmp(argv[i], "--budget-ms") == 0 && i + 1 < argc) {
      budget_ms = std::atof(argv[++i]);
    } else {
      std::cerr << "unknown flag: " << argv[i] << "\n";
      return 2;
    }
  }
  if (want_proof && want_preprocess) {
    std::cerr << "--proof and --preprocess are mutually exclusive\n";
    return 2;
  }

  std::ifstream in(argv[1]);
  if (!in) {
    std::cerr << "cannot open " << argv[1] << "\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  try {
    DimacsProblem problem = parse_dimacs(buffer.str());
    Preprocessor pre;
    if (want_preprocess) {
      if (!pre.run(problem.num_vars, problem.clauses)) {
        std::cout << "s UNSATISFIABLE\n";
        return 20;
      }
      std::cerr << "c preprocess: " << problem.clauses.size() << " -> "
                << pre.clauses().size() << " clauses, "
                << pre.stats().eliminated_vars << " vars eliminated\n";
      problem.clauses = pre.clauses();
    }
    Solver solver;
    Proof proof;
    if (want_proof) {
      solver.set_proof(&proof);
      solver.set_clause_log(true);
    }
    for (int i = 0; i < problem.num_vars; ++i) solver.new_var();
    for (const auto& clause : problem.clauses) solver.add_clause(clause);
    if (budget_ms > 0) {
      solver.set_time_budget(std::chrono::milliseconds(
          static_cast<std::int64_t>(budget_ms)));
    }
    const LBool status = solver.solve();
    const Stats& stats = solver.stats();
    std::cerr << "c conflicts " << stats.conflicts << " decisions "
              << stats.decisions << " propagations " << stats.propagations
              << "\n";
    std::cerr << "c restarts " << stats.restarts << " learnt "
              << stats.learnt_clauses << " removed " << stats.removed_clauses
              << " binary " << stats.binary_clauses << " max-level "
              << stats.max_decision_level << "\n";
    if (status == LBool::kTrue) {
      std::vector<LBool> model(problem.num_vars);
      for (int v = 0; v < problem.num_vars; ++v) model[v] = solver.model_value(v);
      if (want_preprocess) pre.extend_model(model);
      std::cout << "s SATISFIABLE\nv ";
      for (int v = 0; v < problem.num_vars; ++v) {
        std::cout << (model[v] == LBool::kTrue ? v + 1 : -(v + 1)) << " ";
      }
      std::cout << "0\n";
      return 10;
    }
    if (status == LBool::kFalse) {
      std::cout << "s UNSATISFIABLE\n";
      if (want_proof) {
        const DratCheckResult check =
            check_drat(solver.clause_log(), proof);
        std::cerr << "c proof steps " << proof.size() << ", RUP check "
                  << (check.all_steps_valid && check.proves_unsat ? "OK"
                                                                  : "FAILED")
                  << "\n";
        std::cout << proof.to_drat();
      }
      return 20;
    }
    std::cout << "s UNKNOWN\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
