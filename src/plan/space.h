// State space for the classical-planning layout engine (DESIGN.md §13).
//
// Following "Optimal Layout Synthesis for Quantum Circuits as Classical
// Planning" (arxiv 2304.12014), a search state is a qubit mapping plus the
// set of already-executed gates; actions are SWAP insertions (unit cost)
// and gate executions (zero cost, folded into an eager closure). Because
// gates acting on a shared program qubit are totally ordered by program
// order, every dependency-closed executed set is exactly a per-qubit
// prefix, so `next[q]` (executed prefix length of q's gate list) encodes
// the executed set in O(|Q|) ints and the whole state is hashable.
//
// Two structural reductions keep the space small without losing optimality:
//
//  * Eager closure. Executing an executable gate costs nothing, never
//    disables another executable gate (gates on disjoint qubits commute
//    here; gates on a shared qubit execute in prefix order), and never
//    changes any distance - so executing everything executable after every
//    SWAP is confluent and some optimal plan has this form.
//
//  * Active-qubit restriction. A program qubit with no pending two-qubit
//    gate is "inactive": its position can never influence which gates
//    become executable, so (a) SWAPs on edges touching no active position
//    are never needed (dropping one from any plan keeps the plan valid),
//    and (b) the transposition key only needs the active positions -
//    states differing only in inactive placement have identical cost-to-go.
#pragma once

#include <cstdint>
#include <vector>

#include "layout/types.h"

namespace olsq2::plan {

/// Immutable per-problem precomputation shared by every search node.
class Space {
 public:
  explicit Space(const layout::Problem& problem);

  const layout::Problem& problem() const { return *problem_; }
  int num_program_qubits() const { return num_program_; }
  int num_physical_qubits() const { return num_physical_; }
  int total_gates() const { return total_gates_; }

  /// Gate indices acting on program qubit q, in program order.
  const std::vector<int>& qubit_gates(int q) const { return qubit_gates_[q]; }

  /// Index of gate g within qubit_gates(gate.q0) - O(1) pending test.
  int pos_on_q0(int g) const { return pos_on_q0_[g]; }
  int pos_on_q1(int g) const { return pos_on_q1_[g]; }

  /// Program qubits that touch at least one two-qubit gate (placed
  /// explicitly by root enumeration; the rest fill leftover slots).
  const std::vector<int>& interacting_qubits() const { return interacting_; }

  struct State {
    std::vector<int> mapping;  // program qubit -> physical qubit
    std::vector<int> inv;      // physical qubit -> program qubit or -1
    std::vector<int> next;     // executed prefix length per program qubit
    int executed = 0;          // total gates executed (each counted once)
  };

  bool is_goal(const State& s) const { return s.executed == total_gates_; }

  bool gate_executed(const State& s, int g) const {
    return pos_on_q0_[g] < s.next[problem_->circuit->gate(g).q0];
  }

  /// Execute every currently executable gate. If `executed_gates` is
  /// non-null the executed gate indices are appended in execution order
  /// (used to reconstruct per-block gate times).
  void closure(State* s, std::vector<int>* executed_gates = nullptr) const;

  /// q still has a pending two-qubit gate, so its position matters.
  bool active(const State& s, int q) const {
    return s.next[q] <= last_two_qubit_pos_[q];
  }

  /// Device edge indices incident to at least one active qubit's position -
  /// the only SWAPs that can change cost-to-go (see file comment).
  void candidate_edges(const State& s, std::vector<int>* out) const;

  /// Swap the occupants (possibly none) of the edge's endpoints. Applying
  /// the same edge twice is the identity (used by the IDA* undo).
  void apply_swap(State* s, int edge) const;

  /// Transposition key: per-qubit prefix counts followed by, for each
  /// program qubit, its position if active and -1 otherwise.
  std::vector<int> key(const State& s) const;

  /// Enumerate root states (no closure applied): injective placements of
  /// the interacting qubits over physical positions, non-interacting
  /// qubits filling the remaining slots in ascending order. If the full
  /// enumeration exceeds `max_roots`, appends `max_roots` seeded random
  /// placements instead and returns false (search results then certify
  /// only an upper bound). Returns true when the enumeration is complete.
  bool roots(std::int64_t max_roots, std::uint64_t seed,
             std::vector<State>* out) const;

 private:
  const layout::Problem* problem_;
  int num_program_ = 0;
  int num_physical_ = 0;
  int total_gates_ = 0;
  std::vector<std::vector<int>> qubit_gates_;
  std::vector<int> pos_on_q0_;
  std::vector<int> pos_on_q1_;
  std::vector<int> last_two_qubit_pos_;  // -1 when q has no two-qubit gate
  std::vector<int> interacting_;

  State make_root(const std::vector<int>& placement) const;
};

}  // namespace olsq2::plan
