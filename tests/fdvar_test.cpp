// Direct tests for the finite-domain variable abstraction (the encoding
// switch at the heart of the Table I study).
#include <gtest/gtest.h>

#include "layout/fdvar.h"

namespace olsq2::layout {
namespace {

using sat::LBool;
using sat::Solver;

class FdVarEncodings : public ::testing::TestWithParam<VarEncoding> {};

TEST_P(FdVarEncodings, EqLiteralsPartitionTheDomain) {
  for (const int domain : {1, 2, 3, 5, 8, 11}) {
    Solver s;
    encode::CnfBuilder b(s);
    const FdVar v = FdVar::make(b, domain, GetParam());
    // Exactly `domain` distinct values are reachable.
    int models = 0;
    std::vector<bool> seen(domain, false);
    while (s.solve() == LBool::kTrue && models <= domain) {
      const int value = v.decode(s);
      ASSERT_GE(value, 0);
      ASSERT_LT(value, domain);
      EXPECT_FALSE(seen[value]) << "value " << value << " repeated";
      seen[value] = true;
      models++;
      s.add_clause({~v.eq(b, value)});
    }
    EXPECT_EQ(models, domain) << "domain " << domain;
  }
}

TEST_P(FdVarEncodings, LeLiteralSemantics) {
  const int domain = 6;
  for (int value = 0; value < domain; ++value) {
    for (int bound = -1; bound <= domain; ++bound) {
      Solver s;
      encode::CnfBuilder b(s);
      const FdVar v = FdVar::make(b, domain, GetParam());
      s.add_clause({v.eq(b, value)});
      const Lit le = v.le(b, bound);
      ASSERT_EQ(s.solve(), LBool::kTrue);
      EXPECT_EQ(s.model_bool(le), value <= bound)
          << "value " << value << " bound " << bound;
    }
  }
}

TEST_P(FdVarEncodings, AssertLtOrdersValues) {
  const int domain = 5;
  for (int x = 0; x < domain; ++x) {
    for (int y = 0; y < domain; ++y) {
      Solver s;
      encode::CnfBuilder b(s);
      const FdVar a = FdVar::make(b, domain, GetParam());
      const FdVar c = FdVar::make(b, domain, GetParam());
      a.assert_lt(b, c);
      s.add_clause({a.eq(b, x)});
      s.add_clause({c.eq(b, y)});
      EXPECT_EQ(s.solve() == LBool::kTrue, x < y) << x << " vs " << y;
    }
  }
}

TEST_P(FdVarEncodings, AssertLeOrdersValues) {
  const int domain = 4;
  for (int x = 0; x < domain; ++x) {
    for (int y = 0; y < domain; ++y) {
      Solver s;
      encode::CnfBuilder b(s);
      const FdVar a = FdVar::make(b, domain, GetParam());
      const FdVar c = FdVar::make(b, domain, GetParam());
      a.assert_le(b, c);
      s.add_clause({a.eq(b, x)});
      s.add_clause({c.eq(b, y)});
      EXPECT_EQ(s.solve() == LBool::kTrue, x <= y) << x << " vs " << y;
    }
  }
}

TEST_P(FdVarEncodings, SuggestBiasesButNeverConstrains) {
  Solver s;
  encode::CnfBuilder b(s);
  const FdVar v = FdVar::make(b, 7, GetParam());
  v.suggest(s, 4);
  ASSERT_EQ(s.solve(), LBool::kTrue);
  if (GetParam() == VarEncoding::kBinary) {
    // Binary hints set the variable's own bits, so with no other
    // constraints the hint must surface. (One-hot hints compete with the
    // commander auxiliaries' default phases - bias only, not a guarantee.)
    EXPECT_EQ(v.decode(s), 4);
  }
  // A contradicting constraint always wins over the hint.
  s.add_clause({~v.eq(b, 4)});
  ASSERT_EQ(s.solve(), LBool::kTrue);
  EXPECT_NE(v.decode(s), 4);
}

INSTANTIATE_TEST_SUITE_P(Both, FdVarEncodings,
                         ::testing::Values(VarEncoding::kOneHot,
                                           VarEncoding::kBinary),
                         [](const auto& info) {
                           return info.param == VarEncoding::kOneHot
                                      ? std::string("onehot")
                                      : std::string("binary");
                         });

TEST(FdVar, LeCacheReturnsSameLiteral) {
  Solver s;
  encode::CnfBuilder b(s);
  const FdVar v = FdVar::make(b, 9, VarEncoding::kBinary);
  EXPECT_EQ(v.le(b, 3).code(), v.le(b, 3).code());
  const FdVar w = FdVar::make(b, 9, VarEncoding::kOneHot);
  EXPECT_EQ(w.le(b, 5).code(), w.le(b, 5).code());
}

}  // namespace
}  // namespace olsq2::layout
