#include "encode/cardinality.h"

#include <algorithm>
#include <cassert>

#include "encode/bitvec.h"

namespace olsq2::encode {

void at_most_one_pairwise(CnfBuilder& b, std::span<const Lit> lits) {
  for (std::size_t i = 0; i < lits.size(); ++i) {
    for (std::size_t j = i + 1; j < lits.size(); ++j) {
      b.add({~lits[i], ~lits[j]});
    }
  }
}

void at_most_one_commander(CnfBuilder& b, std::span<const Lit> lits,
                           int group_size) {
  assert(group_size >= 2);
  if (lits.size() <= static_cast<std::size_t>(group_size)) {
    at_most_one_pairwise(b, lits);
    return;
  }
  std::vector<Lit> commanders;
  for (std::size_t start = 0; start < lits.size();
       start += static_cast<std::size_t>(group_size)) {
    const std::size_t end =
        std::min(lits.size(), start + static_cast<std::size_t>(group_size));
    const std::span<const Lit> group = lits.subspan(start, end - start);
    at_most_one_pairwise(b, group);
    // Commander literal c: any group member true -> c.
    const Lit c = b.new_lit();
    for (const Lit l : group) b.imply(l, c);
    commanders.push_back(c);
  }
  at_most_one_commander(b, commanders, group_size);
}

void exactly_one(CnfBuilder& b, std::span<const Lit> lits, AmoKind kind) {
  assert(!lits.empty());
  b.add(std::vector<Lit>(lits.begin(), lits.end()));
  switch (kind) {
    case AmoKind::kPairwise:
      at_most_one_pairwise(b, lits);
      break;
    case AmoKind::kCommander:
      at_most_one_commander(b, lits);
      break;
  }
}

void at_most_k_seqcounter(CnfBuilder& b, std::span<const Lit> lits, int k) {
  const int n = static_cast<int>(lits.size());
  if (k >= n) return;
  if (k <= 0) {
    for (const Lit l : lits) b.add({~l});
    return;
  }
  // s[i][j] (0-based) = "at least j+1 of lits[0..i] are true".
  std::vector<std::vector<Lit>> s(n, std::vector<Lit>(k));
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < k; ++j) s[i][j] = b.new_lit();

  // Base row.
  b.imply(lits[0], s[0][0]);
  for (int j = 1; j < k; ++j) b.add({~s[0][j]});
  for (int i = 1; i < n; ++i) {
    b.imply(lits[i], s[i][0]);
    b.imply(s[i - 1][0], s[i][0]);
    for (int j = 1; j < k; ++j) {
      // count reaches j+1 at i if it was j and lits[i] fires, or was already j+1.
      b.imply(lits[i], s[i - 1][j - 1], s[i][j]);
      b.imply(s[i - 1][j], s[i][j]);
    }
    // Overflow: lits[i] with k already reached is forbidden.
    b.add({~lits[i], ~s[i - 1][k - 1]});
  }
}

void at_most_k_adder(CnfBuilder& b, std::span<const Lit> lits, int k) {
  const int n = static_cast<int>(lits.size());
  if (k >= n) return;
  if (k <= 0) {
    for (const Lit l : lits) b.add({~l});
    return;
  }
  // Tree of ripple-carry adders summing single-bit operands.
  std::vector<BitVec> terms;
  terms.reserve(lits.size());
  for (const Lit l : lits) terms.push_back(BitVec::from_bits({l}));
  while (terms.size() > 1) {
    std::vector<BitVec> next;
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
      BitVec sum = terms[i].add(b, terms[i + 1]);
      next.push_back(std::move(sum));
    }
    if (terms.size() % 2 == 1) next.push_back(terms.back());
    // Normalize widths: pad shorter vectors with false.
    std::size_t max_w = 0;
    for (const auto& t : next) max_w = std::max(max_w, static_cast<std::size_t>(t.width()));
    for (auto& t : next) t.pad_to(b, static_cast<int>(max_w));
    terms = std::move(next);
  }
  const Lit le = terms[0].ule_const(b, static_cast<std::uint64_t>(k));
  b.add({le});
}

void at_least_k_seqcounter(CnfBuilder& b, std::span<const Lit> lits, int k) {
  if (k <= 0) return;
  const int n = static_cast<int>(lits.size());
  if (k > n) {
    b.add(std::vector<Lit>{});  // unsatisfiable
    return;
  }
  std::vector<Lit> negated;
  negated.reserve(lits.size());
  for (const Lit l : lits) negated.push_back(~l);
  at_most_k_seqcounter(b, negated, n - k);
}

}  // namespace olsq2::encode
