#include "fuzz/metamorphic.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace olsq2::fuzz {

namespace {

std::vector<int> random_permutation(int n, bengen::Rng& rng) {
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;
  rng.shuffle(perm);
  return perm;
}

circuit::Circuit with_gates(const Instance& base,
                            const std::vector<circuit::Gate>& gates,
                            const std::string& suffix) {
  circuit::Circuit c(base.circuit.num_qubits(), base.circuit.name() + suffix);
  for (const circuit::Gate& g : gates) {
    if (g.is_two_qubit()) {
      c.add_gate(g.name, g.q0, g.q1, g.params);
    } else {
      c.add_gate(g.name, g.q0, g.params);
    }
  }
  return c;
}

}  // namespace

Instance relabel_program_qubits(const Instance& base, bengen::Rng& rng) {
  const auto perm = random_permutation(base.circuit.num_qubits(), rng);
  std::vector<circuit::Gate> gates = base.circuit.gates();
  for (circuit::Gate& g : gates) {
    g.q0 = perm[g.q0];
    if (g.q1 >= 0) g.q1 = perm[g.q1];
  }
  return Instance{with_gates(base, gates, "+relabel"), base.device,
                  base.swap_duration, base.seed};
}

Instance relabel_physical_qubits(const Instance& base, bengen::Rng& rng) {
  const auto perm = random_permutation(base.device.num_qubits(), rng);
  std::vector<device::Edge> edges = base.device.edges();
  for (device::Edge& e : edges) {
    e.p0 = perm[e.p0];
    e.p1 = perm[e.p1];
  }
  return Instance{base.circuit,
                  device::Device(base.device.name() + "+perm",
                                 base.device.num_qubits(), std::move(edges)),
                  base.swap_duration, base.seed};
}

Instance commuting_reorder(const Instance& base, bengen::Rng& rng) {
  std::vector<circuit::Gate> gates = base.circuit.gates();
  const int n = static_cast<int>(gates.size());
  for (int pass = 0; pass < 3; ++pass) {
    for (int i = 0; i + 1 < n; ++i) {
      const circuit::Gate& a = gates[i];
      const circuit::Gate& b = gates[i + 1];
      const bool share = a.acts_on(b.q0) || (b.q1 >= 0 && a.acts_on(b.q1));
      if (!share && rng.chance(0.5)) std::swap(gates[i], gates[i + 1]);
    }
  }
  return Instance{with_gates(base, gates, "+commute"), base.device,
                  base.swap_duration, base.seed};
}

Instance reverse_circuit(const Instance& base) {
  std::vector<circuit::Gate> gates = base.circuit.gates();
  std::reverse(gates.begin(), gates.end());
  return Instance{with_gates(base, gates, "+reverse"), base.device,
                  base.swap_duration, base.seed};
}

Instance pad_front_layer(const Instance& base) {
  std::vector<circuit::Gate> gates;
  gates.reserve(base.circuit.gates().size() + base.circuit.num_qubits());
  for (int q = 0; q < base.circuit.num_qubits(); ++q) {
    gates.push_back(circuit::Gate{"h", q, -1, ""});
  }
  for (const circuit::Gate& g : base.circuit.gates()) gates.push_back(g);
  return Instance{with_gates(base, gates, "+pad"), base.device,
                  base.swap_duration, base.seed};
}

}  // namespace olsq2::fuzz
