// JSON string escaping, shared by every JSON emitter in the repo (result
// serialization in layout/json.cpp, the Chrome trace exporter in obs/).
#pragma once

#include <string>
#include <string_view>

namespace olsq2::obs {

/// Escape `s` for embedding inside a JSON string literal: backslash, double
/// quote, and control characters (U+0000..U+001F) per RFC 8259. Does not add
/// the surrounding quotes.
std::string json_escape(std::string_view s);

}  // namespace olsq2::obs
