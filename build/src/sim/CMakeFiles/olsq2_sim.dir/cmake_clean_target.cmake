file(REMOVE_RECURSE
  "libolsq2_sim.a"
)
