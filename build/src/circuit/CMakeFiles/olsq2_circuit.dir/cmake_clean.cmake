file(REMOVE_RECURSE
  "CMakeFiles/olsq2_circuit.dir/circuit.cpp.o"
  "CMakeFiles/olsq2_circuit.dir/circuit.cpp.o.d"
  "CMakeFiles/olsq2_circuit.dir/dependency.cpp.o"
  "CMakeFiles/olsq2_circuit.dir/dependency.cpp.o.d"
  "libolsq2_circuit.a"
  "libolsq2_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olsq2_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
