// Tests for the fuzzing subsystem itself: generators, reference solver,
// metamorphic transforms, oracles, the delta-debugging reducer, corpus
// persistence, and the end-to-end injected-bug self-test.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "bengen/graphgen.h"
#include "fuzz/corpus.h"
#include "fuzz/fuzzer.h"
#include "fuzz/generator.h"
#include "fuzz/metamorphic.h"
#include "fuzz/oracles.h"
#include "fuzz/reduce.h"
#include "fuzz/refsolver.h"
#include "qasm/parser.h"
#include "qasm/writer.h"
#include "sat/solver.h"

namespace olsq2 {
namespace {

using sat::LBool;
using sat::Lit;

// ---------------------------------------------------------------- generator

TEST(FuzzGenerator, DeterministicFromSeed) {
  const fuzz::Instance a = fuzz::random_instance(12345);
  const fuzz::Instance b = fuzz::random_instance(12345);
  EXPECT_EQ(a.circuit, b.circuit);
  EXPECT_EQ(a.device.num_qubits(), b.device.num_qubits());
  EXPECT_EQ(a.device.num_edges(), b.device.num_edges());
  EXPECT_EQ(a.swap_duration, b.swap_duration);
  const fuzz::Instance c = fuzz::random_instance(12346);
  EXPECT_FALSE(a.circuit == c.circuit && a.device.num_qubits() ==
                   c.device.num_qubits() &&
               a.device.num_edges() == c.device.num_edges());
}

TEST(FuzzGenerator, InstancesAreWellFormed) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const fuzz::Instance inst = fuzz::random_instance(seed);
    SCOPED_TRACE("seed " + std::to_string(seed));
    EXPECT_GE(inst.circuit.num_gates(), 1);
    EXPECT_GE(inst.device.num_qubits(), inst.circuit.num_qubits());
    EXPECT_TRUE(inst.swap_duration == 1 || inst.swap_duration == 3);
    for (const circuit::Gate& g : inst.circuit.gates()) {
      EXPECT_GE(g.q0, 0);
      EXPECT_LT(g.q0, inst.circuit.num_qubits());
      if (g.is_two_qubit()) {
        EXPECT_GE(g.q1, 0);
        EXPECT_LT(g.q1, inst.circuit.num_qubits());
        EXPECT_NE(g.q0, g.q1);
      }
    }
  }
}

TEST(FuzzGenerator, NamedDeviceTargetsPresetWithRegionWorkload) {
  fuzz::GeneratorOptions options;
  options.named_device = "eagle127";
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const fuzz::Instance inst = fuzz::random_instance(seed, options);
    SCOPED_TRACE("seed " + std::to_string(seed));
    EXPECT_EQ(inst.device.num_qubits(), 127);
    EXPECT_LE(inst.circuit.num_qubits(), 5);
    EXPECT_GE(inst.circuit.num_gates(), inst.circuit.num_qubits());
    // Reproducible: same seed, same instance.
    const fuzz::Instance again = fuzz::random_instance(seed, options);
    EXPECT_EQ(inst.circuit, again.circuit);
    EXPECT_EQ(inst.swap_duration, again.swap_duration);
  }
}

TEST(FuzzGenerator, CircuitsRoundTripThroughQasm) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const fuzz::Instance inst = fuzz::random_instance(seed);
    SCOPED_TRACE("seed " + std::to_string(seed));
    const circuit::Circuit reparsed = qasm::parse(qasm::write(inst.circuit));
    EXPECT_EQ(reparsed, inst.circuit);
  }
}

TEST(FuzzGenerator, RandomConnectedGraphIsConnectedAndSimple) {
  bengen::Rng rng(7);
  for (int n = 1; n <= 12; ++n) {
    for (int extra = 0; extra <= 4; ++extra) {
      const auto edges = bengen::random_connected_graph(n, extra, rng);
      SCOPED_TRACE("n=" + std::to_string(n) + " extra=" + std::to_string(extra));
      // Simple graph: no self-loops, no duplicates (in either orientation).
      std::set<std::pair<int, int>> seen;
      for (const auto& [u, v] : edges) {
        EXPECT_NE(u, v);
        EXPECT_TRUE(u >= 0 && u < n && v >= 0 && v < n);
        const auto key = std::minmax(u, v);
        EXPECT_TRUE(seen.insert(key).second) << "duplicate edge";
      }
      EXPECT_GE(edges.size(), static_cast<std::size_t>(n > 1 ? n - 1 : 0));
      // Connectivity by union-find.
      std::vector<int> parent(n);
      for (int i = 0; i < n; ++i) parent[i] = i;
      const auto find = [&](int x) {
        while (parent[x] != x) x = parent[x] = parent[parent[x]];
        return x;
      };
      for (const auto& [u, v] : edges) parent[find(u)] = find(v);
      for (int i = 0; i < n; ++i) EXPECT_EQ(find(i), find(0));
    }
  }
}

TEST(FuzzGenerator, DeriveSeedIsInjectiveEnough) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {0ull, 1ull, 42ull}) {
    for (std::uint64_t i = 0; i < 1000; ++i) {
      EXPECT_TRUE(seen.insert(fuzz::derive_seed(base, i)).second);
    }
  }
}

TEST(FuzzGenerator, RandomCnfRespectsBounds) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const sat::DimacsProblem cnf = fuzz::random_cnf(seed);
    EXPECT_GE(cnf.num_vars, 3);
    EXPECT_LE(cnf.num_vars, 10);
    EXPECT_FALSE(cnf.clauses.empty());
    for (const sat::Clause& c : cnf.clauses) {
      EXPECT_GE(c.size(), 1u);
      EXPECT_LE(c.size(), 3u);
      for (const Lit& l : c) EXPECT_LT(l.var(), cnf.num_vars);
    }
  }
}

// ----------------------------------------------------------------- refsolver

TEST(FuzzRefSolver, KnownFormulas) {
  const Lit a = Lit::pos(0), b = Lit::pos(1);
  // (a | b) & (~a | b) & (a | ~b) : SAT with a=b=true.
  std::vector<bool> model;
  EXPECT_EQ(fuzz::dpll_solve(2, {{a, b}, {~a, b}, {a, ~b}}, &model),
            LBool::kTrue);
  EXPECT_TRUE(fuzz::model_satisfies({{a, b}, {~a, b}, {a, ~b}}, model));
  // All four sign combinations: UNSAT.
  EXPECT_EQ(fuzz::dpll_solve(2, {{a, b}, {~a, b}, {a, ~b}, {~a, ~b}}),
            LBool::kFalse);
  // Empty clause: UNSAT.
  EXPECT_EQ(fuzz::dpll_solve(1, {{}}), LBool::kFalse);
  // No clauses: trivially SAT.
  EXPECT_EQ(fuzz::dpll_solve(1, {}), LBool::kTrue);
}

TEST(FuzzRefSolver, AgreesWithCdclOnRandomCnf) {
  for (std::uint64_t seed = 100; seed < 140; ++seed) {
    const sat::DimacsProblem cnf = fuzz::random_cnf(seed);
    SCOPED_TRACE("seed " + std::to_string(seed));
    sat::Solver solver;
    for (int v = 0; v < cnf.num_vars; ++v) solver.new_var();
    bool consistent = true;
    for (const sat::Clause& c : cnf.clauses) {
      consistent = solver.add_clause(c) && consistent;
    }
    const LBool cdcl =
        consistent ? solver.solve() : LBool::kFalse;
    EXPECT_EQ(fuzz::dpll_solve(cnf.num_vars, cnf.clauses), cdcl);
  }
}

TEST(FuzzOracles, SatCoreCleanOnManySeeds) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const fuzz::OracleReport r = fuzz::check_sat_core(seed);
    for (const std::string& e : r.errors) ADD_FAILURE() << e;
    EXPECT_TRUE(r.ok) << "seed " << seed;
  }
}

// -------------------------------------------------------------- metamorphic

TEST(FuzzMetamorphic, TransformsPreserveShape) {
  bengen::Rng rng(11);
  const fuzz::Instance base = fuzz::random_instance(77);
  const fuzz::Instance rel = fuzz::relabel_program_qubits(base, rng);
  EXPECT_EQ(rel.circuit.num_gates(), base.circuit.num_gates());
  EXPECT_EQ(rel.circuit.num_qubits(), base.circuit.num_qubits());
  const fuzz::Instance phys = fuzz::relabel_physical_qubits(base, rng);
  EXPECT_EQ(phys.device.num_qubits(), base.device.num_qubits());
  EXPECT_EQ(phys.device.num_edges(), base.device.num_edges());
  const fuzz::Instance comm = fuzz::commuting_reorder(base, rng);
  EXPECT_EQ(comm.circuit.num_gates(), base.circuit.num_gates());
  const fuzz::Instance rev = fuzz::reverse_circuit(base);
  ASSERT_EQ(rev.circuit.num_gates(), base.circuit.num_gates());
  for (int i = 0; i < base.circuit.num_gates(); ++i) {
    EXPECT_EQ(rev.circuit.gate(i),
              base.circuit.gate(base.circuit.num_gates() - 1 - i));
  }
  const fuzz::Instance pad = fuzz::pad_front_layer(base);
  EXPECT_EQ(pad.circuit.num_gates(),
            base.circuit.num_gates() + base.circuit.num_qubits());
}

TEST(FuzzOracles, MetamorphicCleanOnSeveralSeeds) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const fuzz::Instance inst = fuzz::random_instance(seed);
    const fuzz::OracleReport r = fuzz::check_metamorphic(inst, seed);
    for (const std::string& e : r.errors) ADD_FAILURE() << e;
    EXPECT_TRUE(r.ok) << "seed " << seed;
  }
}

// ------------------------------------------------------------------ reducer

TEST(FuzzReduce, ShrinksToSingleTriggeringGate) {
  // Synthetic failure: "the circuit contains a cx gate". The reducer should
  // strip everything else and keep exactly one cx.
  fuzz::GeneratorOptions gen;
  gen.min_gates = 10;
  gen.max_gates = 12;
  fuzz::Instance failing = fuzz::random_instance(5, gen);
  bool has_cx = false;
  for (const circuit::Gate& g : failing.circuit.gates()) {
    has_cx |= g.name == "cx";
  }
  if (!has_cx) failing.circuit.add_gate("cx", 0, 1);
  const auto predicate = [](const fuzz::Instance& c) {
    for (const circuit::Gate& g : c.circuit.gates()) {
      if (g.name == "cx") return true;
    }
    return false;
  };
  const fuzz::ReduceResult r = fuzz::reduce(failing, predicate);
  EXPECT_TRUE(r.input_failed);
  EXPECT_EQ(r.instance.circuit.num_gates(), 1);
  EXPECT_EQ(r.instance.circuit.gate(0).name, "cx");
  EXPECT_EQ(r.instance.circuit.num_qubits(), 2);  // compacted
  EXPECT_TRUE(predicate(r.instance));
}

TEST(FuzzReduce, NonFailingInputReturnedUnchanged) {
  const fuzz::Instance inst = fuzz::random_instance(9);
  const fuzz::ReduceResult r =
      fuzz::reduce(inst, [](const fuzz::Instance&) { return false; });
  EXPECT_FALSE(r.input_failed);
  EXPECT_EQ(r.instance.circuit, inst.circuit);
  EXPECT_EQ(r.predicate_calls, 1);
}

// ------------------------------------------------------------------- corpus

TEST(FuzzCorpusIo, DeviceJsonRoundTrip) {
  const fuzz::Instance inst = fuzz::random_instance(3);
  const std::string json =
      fuzz::device_to_json(inst.device, inst.swap_duration);
  const fuzz::DeviceSpec spec = fuzz::device_from_json(json);
  EXPECT_EQ(spec.device.num_qubits(), inst.device.num_qubits());
  EXPECT_EQ(spec.device.num_edges(), inst.device.num_edges());
  EXPECT_EQ(spec.swap_duration, inst.swap_duration);
}

TEST(FuzzCorpusIo, MalformedJsonRejected) {
  EXPECT_THROW(fuzz::device_from_json("{}"), std::runtime_error);
  EXPECT_THROW(fuzz::device_from_json("{\"qubits\": 2}"), std::runtime_error);
  EXPECT_THROW(
      fuzz::device_from_json(
          "{\"qubits\": 2, \"edges\": [[0,5]]}"),
      std::runtime_error);
  EXPECT_THROW(
      fuzz::device_from_json("{\"qubits\": 0, \"edges\": []}"),
      std::runtime_error);
  EXPECT_THROW(fuzz::device_from_json("not json"), std::runtime_error);
}

TEST(FuzzCorpusIo, SaveLoadListRoundTrip) {
  const std::string dir = ::testing::TempDir() + "fuzz_corpus_io";
  const fuzz::Instance inst = fuzz::random_instance(21);
  fuzz::save_case(dir, "case_a", inst);
  fuzz::save_case(dir, "case_b", fuzz::random_instance(22));
  const auto names = fuzz::list_cases(dir);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "case_a");
  EXPECT_EQ(names[1], "case_b");
  const auto all = fuzz::load_all_cases(dir);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].circuit, inst.circuit);
  EXPECT_EQ(all[0].swap_duration, inst.swap_duration);
  EXPECT_TRUE(fuzz::list_cases(dir + "/does_not_exist").empty());
}

// ----------------------------------------------------- end-to-end self-test

TEST(FuzzEndToEnd, CleanLibraryPassesShortRun) {
  fuzz::FuzzOptions options;
  options.seed = 2024;
  options.iterations = 8;
  const fuzz::FuzzReport report = fuzz::run_fuzz(options);
  for (const fuzz::FuzzFailure& f : report.failures) {
    for (const std::string& e : f.errors) ADD_FAILURE() << e;
  }
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.iterations, 8);
  EXPECT_EQ(report.instance_checks + report.sat_core_checks +
                report.inprocess_checks,
            8);
  EXPECT_EQ(report.inprocess_checks, 1) << "iteration 7 runs the on/off "
                                           "inprocessing differential";
}

TEST(FuzzEndToEnd, InjectedEncodingBugCaughtAndReduced) {
  // The acceptance gate for the whole subsystem: flip on the deliberate
  // injectivity hole in layout/model.cpp and demand that the fuzzer finds
  // it and the reducer shrinks it to a trivially small repro.
  ASSERT_EQ(setenv("OLSQ2_FUZZ_INJECT_ENCODING_BUG", "1", 1), 0);
  fuzz::FuzzOptions options;
  options.seed = 7;
  options.iterations = 50;
  options.stop_on_failure = true;
  options.corpus_dir = ::testing::TempDir() + "fuzz_injected";
  const fuzz::FuzzReport report = fuzz::run_fuzz(options);
  ASSERT_EQ(unsetenv("OLSQ2_FUZZ_INJECT_ENCODING_BUG"), 0);

  ASSERT_FALSE(report.failures.empty()) << "injected bug was not caught";
  const fuzz::FuzzFailure& f = report.failures.front();
  EXPECT_EQ(f.oracle, "encoding_differential");
  ASSERT_TRUE(f.reduced.has_value());
  EXPECT_LE(f.reduced->circuit.num_gates(), 5);
  ASSERT_EQ(f.saved_paths.size(), 2u);
  // The saved repro still fails while the bug is on, and the identical
  // instance is clean after the flag is cleared (the flag is re-read per
  // model build).
  const fuzz::Instance repro =
      fuzz::load_case(f.saved_paths[0], f.saved_paths[1]);
  EXPECT_TRUE(fuzz::check_encoding_differential(repro).ok);
  ASSERT_EQ(setenv("OLSQ2_FUZZ_INJECT_ENCODING_BUG", "1", 1), 0);
  EXPECT_FALSE(fuzz::check_encoding_differential(repro).ok);
  ASSERT_EQ(unsetenv("OLSQ2_FUZZ_INJECT_ENCODING_BUG"), 0);
}

}  // namespace
}  // namespace olsq2
