// Aggregated metrics registry: the numeric companion to the trace layer in
// obs.h. Where obs::Span/counter record *events* for timeline inspection,
// this registry keeps *aggregates* — monotonic counters, gauges, and
// log-bucketed latency histograms — cheap enough to stay on permanently and
// exportable in machine-readable form (obs/expose.h: Prometheus text
// exposition + JSON snapshot) for the serving daemon and the bench-diff
// regression gate.
//
// Concepts:
//   Counter    - monotonically increasing uint64 (events, bytes written).
//   Gauge      - a value that goes up and down (resident bytes, entries).
//   Histogram  - log₂-bucketed distribution with exact min/max/sum/count
//                and interpolated p50/p90/p99 at snapshot time.
//   Family     - a named metric plus help text; label sets select series
//                within the family (same name+labels => same object).
//
// Cost discipline (same contract as obs::Span):
//   * disabled: every record call is one relaxed atomic load and a branch.
//   * enabled:  counters/histograms are sharded across cache-line-padded
//     atomic slots indexed by thread id, so portfolio threads never contend
//     on one cache line. Registry lookups take a mutex — call sites on hot
//     paths cache the returned reference in a function-local static.
//
// Activation (checked once, on first use):
//   OLSQ2_METRICS=<file>  collect, and write the registry to <file> at
//                         process exit (*.json => JSON snapshot, otherwise
//                         Prometheus text exposition)
//   OLSQ2_METRICS=1       collect only (programmatic export)
// or programmatically via set_enabled(true) (tests, olsq2_serve
// --metrics-out).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/sync.h"

namespace olsq2::obs::metrics {

/// Ordered label key/value pairs. Series identity compares the whole
/// vector, so call sites must list labels in a consistent order.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace internal {
extern std::atomic<bool> g_enabled;
/// Small dense shard index for the calling thread (reuses the trace
/// layer's thread ids, so shard count stays power-of-two cheap).
std::size_t shard_index();
}  // namespace internal

/// One relaxed load; every record call checks this first.
inline bool enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

/// Shards per metric: enough that a 4-8 thread portfolio rarely collides,
/// small enough that snapshot sums stay trivial.
inline constexpr std::size_t kShards = 8;

class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if (!enabled()) return;
    shards_[internal::shard_index()].v.fetch_add(n,
                                                 std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }
  void reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kShards> shards_{};
};

class Gauge {
 public:
  void set(double v) {
    if (!enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void add(double delta) {
    if (!enabled()) return;
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

/// Aggregated view of one histogram series, consistent enough for export:
/// shards are summed at snapshot time (concurrent observes may straddle the
/// walk, which skews a live snapshot by at most the in-flight samples).
struct HistogramSnapshot {
  /// Per-bucket (non-cumulative) counts; bucket i covers
  /// (upper(i-1), upper(i)], the last bucket is the +Inf overflow.
  std::vector<std::uint64_t> bucket_counts;
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;  // exact (0 when count == 0)
  double max = 0;  // exact

  /// Upper bound of bucket `i` (+Inf for the last bucket).
  static double bucket_upper(std::size_t i);

  /// Interpolated quantile estimate, clamped to [min, max]; q in [0, 1].
  /// Error is bounded by the log₂ bucket width (< 2x), while min/max/sum
  /// are exact — the usual histogram trade.
  double quantile(double q) const;
};

class Histogram {
 public:
  /// Finite bucket upper bounds are 2^(kMinExp) .. 2^(kMinExp+kBuckets-2);
  /// with kMinExp = -10 and latencies in ms that spans ~1 µs to ~6 days.
  static constexpr int kMinExp = -10;
  static constexpr int kBuckets = 40;

  void observe(double v);
  HistogramSnapshot snapshot() const;
  void reset();

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0};
  };
  std::array<Shard, kShards> shards_{};
  std::atomic<double> min_{0};
  std::atomic<double> max_{0};
  std::atomic<bool> has_sample_{false};
};

enum class Kind { kCounter, kGauge, kHistogram };

/// Process-wide metric registry. Thread-safe; returned references are
/// stable for the registry's lifetime (metrics are never unregistered).
class Registry {
 public:
  static Registry& instance();

  /// Find-or-create the series (name, labels). Re-registering an existing
  /// name with a different Kind throws std::logic_error; `help` is taken
  /// from the first registration.
  Counter& counter(std::string_view name, std::string_view help = "",
                   Labels labels = {});
  Gauge& gauge(std::string_view name, std::string_view help = "",
               Labels labels = {});
  Histogram& histogram(std::string_view name, std::string_view help = "",
                       Labels labels = {});

  struct SeriesSnapshot {
    Labels labels;
    double value = 0;            // counter / gauge
    HistogramSnapshot histogram;  // kHistogram only
  };
  struct FamilySnapshot {
    std::string name;
    std::string help;
    Kind kind = Kind::kCounter;
    std::vector<SeriesSnapshot> series;
  };
  /// Consistent-enough copy of every family, in registration order.
  std::vector<FamilySnapshot> snapshot() const;

  /// Zero every metric (objects stay registered and references stay
  /// valid). Tests only — live handles cached in function-local statics
  /// keep counting into the same storage.
  void reset_all();

  ~Registry();

 private:
  Registry();
  struct Family;
  /// Caller holds impl_->mutex. Impl is incomplete here, so the contract
  /// cannot be spelled as OLSQ2_REQUIRES(impl_->mutex); the analysis is
  /// disabled for the body instead and every caller in metrics.cpp locks
  /// first (checked there by the annotations on Impl's fields).
  Family& family(std::string_view name, std::string_view help, Kind kind)
      OLSQ2_NO_THREAD_SAFETY_ANALYSIS;

  struct Impl;
  Impl* impl_;
};

/// Resident-set high-water mark of this process in bytes (0 when the
/// platform offers no cheap answer). Byte-level accounting hook shared by
/// the bench emitters' schema stamp and the exporters.
std::size_t peak_rss_bytes();

/// 8-hex-char FNV-1a digest — bounded-cardinality label values for
/// unbounded strings (exchange group fingerprints, cache keys).
std::string short_hash(std::string_view s);

}  // namespace olsq2::obs::metrics
