#include "serve/canonical.h"

#include <algorithm>
#include <functional>
#include <map>
#include <sstream>
#include <tuple>

#include "circuit/dependency.h"
#include "obs/obs.h"

namespace olsq2::serve {

namespace {

// Individualization-refinement node budget. Refinement discretizes most
// real coupling graphs and circuits after one or two individualizations;
// the budget only triggers on highly symmetric inputs (large grids, empty
// circuits), where the fallback costs cache hits, not correctness.
constexpr int kLeafBudget = 2048;

/// Densify arbitrary color values into ranks 0..k-1 preserving order.
int densify(std::vector<int>& colors) {
  std::vector<int> sorted(colors);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (int& c : colors) {
    c = static_cast<int>(std::lower_bound(sorted.begin(), sorted.end(), c) -
                         sorted.begin());
  }
  return static_cast<int>(sorted.size());
}

/// Generic WL-style refinement: `signature(v, colors)` must be
/// label-invariant given invariant colors. Runs to a fixpoint.
template <typename SigFn>
std::vector<int> refine_colors(int n, std::vector<int> colors,
                               const SigFn& signature) {
  int classes = densify(colors);
  while (classes < n) {
    std::map<std::vector<int>, int> rank;
    std::vector<std::vector<int>> sigs(n);
    for (int v = 0; v < n; ++v) {
      sigs[v] = signature(v, colors);
      rank.emplace(sigs[v], 0);
    }
    int next = 0;
    for (auto& [sig, r] : rank) r = next++;
    std::vector<int> refined(n);
    for (int v = 0; v < n; ++v) refined[v] = rank[sigs[v]];
    if (next == classes) break;  // partition stable
    colors = std::move(refined);
    classes = next;
  }
  return colors;
}

/// First color class with more than one member; -1 when discrete. Classes
/// are scanned in color order, so the choice is label-invariant.
int first_ambiguous_class(const std::vector<int>& colors, int n) {
  std::vector<int> count(n, 0);
  for (const int c : colors) count[c]++;
  for (int c = 0; c < n; ++c) {
    if (count[c] > 1) return c;
  }
  return -1;
}

/// Split class `cls` so that `v` keeps the class color and its former
/// classmates move to the next color (all higher colors shift up one).
std::vector<int> individualize(const std::vector<int>& colors, int cls,
                               int v) {
  std::vector<int> child(colors);
  for (std::size_t u = 0; u < child.size(); ++u) {
    if (child[u] > cls) child[u]++;
    if (child[u] == cls && static_cast<int>(u) != v) child[u]++;
  }
  return child;
}

/// Shared individualization-refinement skeleton. `refine` maps colors to a
/// stable refinement; `serialize` turns a discrete coloring (colors ==
/// labels) into the candidate key. Minimizes the key over every branch,
/// which makes the result invariant: automorphic candidates yield equal
/// keys, non-automorphic ones are separated by the lexicographic order.
struct CanonSearch {
  int n = 0;
  std::function<std::vector<int>(std::vector<int>)> refine;
  std::function<std::string(const std::vector<int>&)> serialize;

  int leaves_used = 0;
  bool budget_hit = false;
  std::string best_key;
  std::vector<int> best_labels;

  void run(std::vector<int> colors) { visit(std::move(colors)); }

  void visit(std::vector<int> colors) {
    colors = refine(std::move(colors));
    const int cls = first_ambiguous_class(colors, n);
    if (cls < 0) {
      leaves_used++;
      std::string key = serialize(colors);
      if (best_key.empty() || key < best_key) {
        best_key = std::move(key);
        best_labels = std::move(colors);
      }
      return;
    }
    if (leaves_used >= kLeafBudget) {
      // Budget exhausted: finish this branch without further branching by
      // always individualizing the lowest-index member. Deterministic and
      // sound (the key still serializes a genuine relabeling), but no
      // longer invariant under relabeling of the input.
      budget_hit = true;
      while (true) {
        const int c = first_ambiguous_class(colors, n);
        if (c < 0) break;
        int pick = -1;
        for (int v = 0; v < n; ++v) {
          if (colors[v] == c) {
            pick = v;
            break;
          }
        }
        colors = refine(individualize(colors, c, pick));
      }
      leaves_used++;
      std::string key = serialize(colors);
      if (best_key.empty() || key < best_key) {
        best_key = std::move(key);
        best_labels = std::move(colors);
      }
      return;
    }
    for (int v = 0; v < n; ++v) {
      if (colors[v] != cls) continue;
      visit(individualize(colors, cls, v));
      if (budget_hit) return;  // the fallback leaf already closed this run
    }
  }
};

std::string serialize_device(const device::Device& dev,
                             const std::vector<int>& labels) {
  std::vector<std::pair<int, int>> edges;
  edges.reserve(dev.num_edges());
  for (const device::Edge& e : dev.edges()) {
    const int a = labels[e.p0];
    const int b = labels[e.p1];
    edges.emplace_back(std::min(a, b), std::max(a, b));
  }
  std::sort(edges.begin(), edges.end());
  std::ostringstream out;
  out << "D" << dev.num_qubits() << ":";
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (i) out << ",";
    out << edges[i].first << "-" << edges[i].second;
  }
  return out.str();
}

/// One gate occurrence on a qubit: (level, gate token). Tokens are dense
/// ranks of "name(params)" strings - label-invariant by construction. The
/// operand position (q0 vs q1) is deliberately NOT part of the invariant:
/// layout synthesis only constrains the mapped pair's adjacency, so the
/// canonical form also quotients by two-qubit operand orientation.
struct Occurrence {
  int level;
  int token;
  int gate;     // original gate index
  int partner;  // partner qubit, -1 for single-qubit gates

  auto invariant_part() const { return std::tie(level, token); }
};

}  // namespace

std::vector<int> invert_permutation(const std::vector<int>& perm) {
  std::vector<int> inv(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    inv[perm[i]] = static_cast<int>(i);
  }
  return inv;
}

DeviceCanon canonicalize_device(const device::Device& dev) {
  obs::Span span("serve.canonicalize.device");
  const int n = dev.num_qubits();
  DeviceCanon canon;
  if (n == 0) {
    canon.key = "D0:";
    return canon;
  }

  const auto signature = [&](int v, const std::vector<int>& colors) {
    std::vector<int> sig{colors[v]};
    std::vector<int> neigh;
    neigh.reserve(dev.neighbors(v).size());
    for (const int u : dev.neighbors(v)) neigh.push_back(colors[u]);
    std::sort(neigh.begin(), neigh.end());
    sig.insert(sig.end(), neigh.begin(), neigh.end());
    return sig;
  };

  CanonSearch search;
  search.n = n;
  search.refine = [&](std::vector<int> colors) {
    return refine_colors(n, std::move(colors), signature);
  };
  search.serialize = [&](const std::vector<int>& labels) {
    return serialize_device(dev, labels);
  };
  // Seed: degree classes.
  std::vector<int> colors(n);
  for (int v = 0; v < n; ++v) {
    colors[v] = static_cast<int>(dev.neighbors(v).size());
  }
  search.run(std::move(colors));

  canon.perm = search.best_labels;
  canon.key = search.best_key;
  canon.exact = !search.budget_hit;
  if (span.live()) {
    span.arg("qubits", n);
    span.arg("leaves", search.leaves_used);
    span.arg("exact", canon.exact);
  }
  return canon;
}

CircuitCanon canonicalize_circuit(const circuit::Circuit& circ) {
  obs::Span span("serve.canonicalize.circuit");
  const int nq = circ.num_qubits();
  const int ng = circ.num_gates();
  const circuit::DependencyGraph deps(circ);

  // Dense, label-invariant gate tokens.
  std::map<std::string, int> token_rank;
  std::vector<int> token(ng);
  for (int g = 0; g < ng; ++g) {
    const circuit::Gate& gate = circ.gate(g);
    token_rank.emplace(gate.name + "(" + gate.params + ")", 0);
  }
  {
    int next = 0;
    for (auto& [name, r] : token_rank) r = next++;
    for (int g = 0; g < ng; ++g) {
      const circuit::Gate& gate = circ.gate(g);
      token[g] = token_rank[gate.name + "(" + gate.params + ")"];
    }
  }

  std::vector<std::vector<Occurrence>> occ(nq);
  for (int g = 0; g < ng; ++g) {
    const circuit::Gate& gate = circ.gate(g);
    const int level = deps.chain_depth(g);
    occ[gate.q0].push_back({level, token[g], g, gate.q1});
    if (gate.q1 >= 0) {
      occ[gate.q1].push_back({level, token[g], g, gate.q0});
    }
  }
  for (auto& list : occ) {
    std::sort(list.begin(), list.end(), [](const auto& a, const auto& b) {
      return a.invariant_part() < b.invariant_part();
    });
  }

  // Untouched qubits are fully interchangeable: they appear in no gate, so
  // any assignment of the trailing labels yields the same canonical gate
  // list. Excluding them from the search keeps empty-ish circuits from
  // exploding the branch factor.
  std::vector<int> touched;
  for (int q = 0; q < nq; ++q) {
    if (!occ[q].empty()) touched.push_back(q);
  }
  const int nt = static_cast<int>(touched.size());

  const auto signature = [&](int i, const std::vector<int>& colors) {
    // i indexes `touched`; partner colors refer to touched ranks.
    std::vector<int> sig{colors[i]};
    std::vector<std::vector<int>> parts;
    for (const Occurrence& o : occ[touched[i]]) {
      int partner_color = -1;
      if (o.partner >= 0) {
        const auto it =
            std::lower_bound(touched.begin(), touched.end(), o.partner);
        partner_color = colors[it - touched.begin()];
      }
      parts.push_back({o.level, o.token, partner_color});
    }
    std::sort(parts.begin(), parts.end());
    for (const auto& p : parts) sig.insert(sig.end(), p.begin(), p.end());
    return sig;
  };

  // Canonical gate order under a full qubit labeling: sort by (level,
  // token, sorted labels). Gates sharing a level act on disjoint qubits,
  // so the label components make the key total. Labels are compared
  // orientation-normalized (min first), matching the serialized form.
  const auto gate_labels = [](const circuit::Gate& gate,
                              const std::vector<int>& qubit_label) {
    const int a = qubit_label[gate.q0];
    const int b = gate.q1 >= 0 ? qubit_label[gate.q1] : -1;
    return b >= 0 ? std::make_pair(std::min(a, b), std::max(a, b))
                  : std::make_pair(a, -1);
  };
  const auto gate_order = [&](const std::vector<int>& qubit_label) {
    std::vector<int> order(ng);
    for (int g = 0; g < ng; ++g) order[g] = g;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const auto key = [&](int g) {
        return std::make_tuple(deps.chain_depth(g), token[g],
                               gate_labels(circ.gate(g), qubit_label));
      };
      return key(a) < key(b);
    });
    return order;
  };

  const auto full_labels = [&](const std::vector<int>& colors) {
    // colors: touched ranks 0..nt-1; untouched qubits take nt.. in index
    // order (invariant: they are not mentioned by the serialized form).
    std::vector<int> label(nq, -1);
    for (int i = 0; i < nt; ++i) label[touched[i]] = colors[i];
    int next = nt;
    for (int q = 0; q < nq; ++q) {
      if (label[q] < 0) label[q] = next++;
    }
    return label;
  };

  const auto serialize = [&](const std::vector<int>& colors) {
    const std::vector<int> label = full_labels(colors);
    std::ostringstream out;
    out << "C" << nq << "g" << ng << ":";
    for (const int g : gate_order(label)) {
      const circuit::Gate& gate = circ.gate(g);
      const auto [la, lb] = gate_labels(gate, label);
      out << deps.chain_depth(g) << "." << gate.name;
      if (!gate.params.empty()) out << "(" << gate.params << ")";
      out << "@" << la;
      if (lb >= 0) out << "," << lb;
      out << ";";
    }
    return out.str();
  };

  CircuitCanon canon;
  if (nt == 0) {
    canon.qubit_perm.resize(nq);
    for (int q = 0; q < nq; ++q) canon.qubit_perm[q] = q;
    canon.key = serialize({});
    return canon;
  }

  CanonSearch search;
  search.n = nt;
  search.refine = [&](std::vector<int> colors) {
    return refine_colors(nt, std::move(colors), signature);
  };
  search.serialize = serialize;
  // Seed: rank touched qubits by their invariant occurrence lists.
  {
    std::vector<std::vector<std::tuple<int, int>>> seeds(nt);
    std::map<std::vector<std::tuple<int, int>>, int> rank;
    for (int i = 0; i < nt; ++i) {
      for (const Occurrence& o : occ[touched[i]]) {
        seeds[i].push_back(o.invariant_part());
      }
      rank.emplace(seeds[i], 0);
    }
    int next = 0;
    for (auto& [seed, r] : rank) r = next++;
    std::vector<int> colors(nt);
    for (int i = 0; i < nt; ++i) colors[i] = rank[seeds[i]];
    search.run(std::move(colors));
  }

  canon.qubit_perm = full_labels(search.best_labels);
  canon.key = search.best_key;
  canon.exact = !search.budget_hit;
  canon.gate_perm.resize(ng);
  {
    const std::vector<int> order = gate_order(canon.qubit_perm);
    for (int pos = 0; pos < ng; ++pos) canon.gate_perm[order[pos]] = pos;
  }
  if (span.live()) {
    span.arg("qubits", nq);
    span.arg("gates", ng);
    span.arg("leaves", search.leaves_used);
    span.arg("exact", canon.exact);
  }
  return canon;
}

std::string InstanceCanon::instance_key() const {
  return circuit.key + "|" + device.key + "|S" + std::to_string(swap_duration);
}

InstanceCanon canonicalize(const circuit::Circuit& circuit,
                           const device::Device& device, int swap_duration) {
  obs::Span span("serve.canonicalize");
  InstanceCanon canon;
  canon.circuit = canonicalize_circuit(circuit);
  canon.device = canonicalize_device(device);
  canon.swap_duration = swap_duration;
  return canon;
}

circuit::Circuit apply_circuit_canon(const circuit::Circuit& circ,
                                     const CircuitCanon& canon) {
  circuit::Circuit out(circ.num_qubits(), "canon");
  const std::vector<int> inv = invert_permutation(canon.gate_perm);
  for (int pos = 0; pos < circ.num_gates(); ++pos) {
    const circuit::Gate& g = circ.gate(inv[pos]);
    if (g.is_two_qubit()) {
      // Orientation-normalized, matching the serialized key: equal keys
      // must yield byte-identical canonical circuits.
      const int a = canon.qubit_perm[g.q0];
      const int b = canon.qubit_perm[g.q1];
      out.add_gate(g.name, std::min(a, b), std::max(a, b), g.params);
    } else {
      out.add_gate(g.name, canon.qubit_perm[g.q0], g.params);
    }
  }
  return out;
}

device::Device apply_device_canon(const device::Device& dev,
                                  const DeviceCanon& canon) {
  std::vector<device::Edge> edges;
  edges.reserve(dev.num_edges());
  for (const device::Edge& e : dev.edges()) {
    const int a = canon.perm[e.p0];
    const int b = canon.perm[e.p1];
    edges.push_back({std::min(a, b), std::max(a, b)});
  }
  // Sort so every relabeling-equivalent original builds the *identical*
  // canonical device, edge indexing included.
  std::sort(edges.begin(), edges.end(), [](const auto& x, const auto& y) {
    return std::tie(x.p0, x.p1) < std::tie(y.p0, y.p1);
  });
  return device::Device("canon", dev.num_qubits(), std::move(edges));
}

}  // namespace olsq2::serve
