#include "sat/arena.h"

#include <algorithm>
#include <stdexcept>

namespace olsq2::sat {

void ClauseArena::grow(std::uint32_t min_cap) {
  // Amortized doubling from a 64 KiB floor. CRefs are word offsets, so the
  // arena tops out at 16 GiB of clauses; a solver anywhere near that is
  // lost regardless, but fail loudly rather than wrap the offsets.
  std::uint64_t next = std::max<std::uint64_t>(cap_, 1u << 14);
  while (next < min_cap) next *= 2;
  if (next > kCRefUndef) {
    if (min_cap > kCRefUndef) {
      throw std::length_error("ClauseArena: clause storage exceeds 2^32 words");
    }
    next = kCRefUndef;
  }
  auto fresh = std::make_unique<std::uint32_t[]>(next);
  if (top_ > 0) {
    std::memcpy(fresh.get(), mem_.get(), top_ * sizeof(std::uint32_t));
  }
  mem_ = std::move(fresh);
  cap_ = static_cast<std::uint32_t>(next);
}

}  // namespace olsq2::sat
