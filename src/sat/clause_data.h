// Internal clause representation shared between the solver core
// (solver.cpp) and the invariant auditor (invariant_check.cpp). Not part
// of the public API — include solver.h instead.
#pragma once

#include <cstddef>
#include <vector>

#include "sat/solver.h"
#include "sat/types.h"

namespace olsq2::sat {

struct Solver::ClauseData {
  std::vector<Lit> lits;
  float activity = 0.0f;
  unsigned lbd = 0;
  bool learnt = false;

  std::size_t size() const { return lits.size(); }
  Lit& operator[](std::size_t i) { return lits[i]; }
  Lit operator[](std::size_t i) const { return lits[i]; }
};

}  // namespace olsq2::sat
