file(REMOVE_RECURSE
  "CMakeFiles/windowed_test.dir/windowed_test.cpp.o"
  "CMakeFiles/windowed_test.dir/windowed_test.cpp.o.d"
  "windowed_test"
  "windowed_test.pdb"
  "windowed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/windowed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
