// The fuzzing driver: seeded instance stream -> oracles -> reducer -> corpus.
//
// Every iteration derives an independent seed from the base seed and the
// iteration index (derive_seed), so any failure is reproducible from the
// pair printed in the report: `olsq2_fuzz --seed <base> --iterations <i+1>`
// replays it, and the reduced repro is also written to the corpus directory
// as a self-contained QASM + device JSON pair.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/generator.h"
#include "fuzz/oracles.h"

namespace olsq2::fuzz {

struct FuzzOptions {
  std::uint64_t seed = 1;
  /// Wall-clock budget; 0 = no time limit.
  double seconds = 0.0;
  /// Iteration cap; 0 = no cap. At least one of seconds/iterations must be
  /// positive or run_fuzz returns immediately.
  int iterations = 0;
  /// Where reduced repros are written; empty = don't persist.
  std::string corpus_dir;
  bool reduce_failures = true;
  /// Stop after the first failure instead of continuing the stream.
  bool stop_on_failure = false;
  GeneratorOptions gen;
  /// Print one line per iteration to stderr.
  bool verbose = false;
};

struct FuzzFailure {
  std::uint64_t base_seed = 0;
  int iteration = 0;
  std::uint64_t instance_seed = 0;
  std::string oracle;
  std::vector<std::string> errors;
  /// Present when the reducer ran and confirmed the failure.
  std::optional<Instance> reduced;
  int reduce_calls = 0;
  /// Paths written by save_case (empty when corpus_dir was empty).
  std::vector<std::string> saved_paths;
};

struct FuzzReport {
  int iterations = 0;
  int instance_checks = 0;
  int sat_core_checks = 0;
  int inprocess_checks = 0;
  double elapsed_seconds = 0.0;
  std::vector<FuzzFailure> failures;

  bool ok() const { return failures.empty(); }
};

FuzzReport run_fuzz(const FuzzOptions& options);

/// Human-readable multi-line summary of a report (stable format, used by
/// the CLI and tests).
std::string format_report(const FuzzReport& report);

}  // namespace olsq2::fuzz
