// Tests for machine-checkable optimality certificates.
#include <gtest/gtest.h>

#include "bengen/workloads.h"
#include "circuit/dependency.h"
#include "device/presets.h"
#include "layout/certify.h"
#include "layout/olsq2.h"

namespace olsq2::layout {
namespace {

TEST(Certify, DepthOptimalityOfQueko) {
  const auto dev = device::grid(2, 3);
  bengen::QuekoSpec spec;
  spec.depth = 4;
  spec.gate_count = 12;
  spec.seed = 7;
  const auto c = bengen::queko(dev, spec);
  const Problem problem{&c, &dev, 3};

  const Result optimal = synthesize_depth_optimal(problem);
  ASSERT_TRUE(optimal.solved);
  ASSERT_EQ(optimal.depth, 4);

  const circuit::DependencyGraph deps(c);
  const Certificate cert = certify_depth_lower_bound(
      problem, deps.default_upper_bound(), optimal.depth - 1);
  EXPECT_TRUE(cert.infeasible);
  EXPECT_TRUE(cert.proof_checked);
  EXPECT_TRUE(cert.refutation_complete);
  EXPECT_TRUE(cert.certified());
  EXPECT_GT(cert.proof_steps, 0u);
}

TEST(Certify, SwapOptimalityOfTriangleOnLine) {
  circuit::Circuit c(3, "triangle");
  c.add_gate("zz", 0, 1);
  c.add_gate("zz", 1, 2);
  c.add_gate("zz", 0, 2);
  const auto dev = device::grid(1, 3);
  const Problem problem{&c, &dev, 1};
  const Result optimal = synthesize_swap_optimal(problem);
  ASSERT_TRUE(optimal.solved);
  ASSERT_GE(optimal.swap_count, 1);

  // One fewer SWAP within the discovered depth horizon is refutable.
  const Certificate cert = certify_swap_lower_bound(
      problem, optimal.depth, optimal.swap_count - 1);
  EXPECT_TRUE(cert.certified());
}

TEST(Certify, FeasibleBoundIsNotCertified) {
  const auto c = bengen::qaoa_3regular(4, 1);
  const auto dev = device::grid(2, 2);
  const Problem problem{&c, &dev, 1};
  const Result optimal = synthesize_depth_optimal(problem);
  ASSERT_TRUE(optimal.solved);
  const circuit::DependencyGraph deps(c);
  // Bounding at the optimum itself is satisfiable: no certificate.
  const Certificate cert = certify_depth_lower_bound(
      problem, deps.default_upper_bound(), optimal.depth);
  EXPECT_FALSE(cert.infeasible);
  EXPECT_FALSE(cert.certified());
}

TEST(Certify, VacuousBoundRejected) {
  const auto c = bengen::qaoa_3regular(4, 1);
  const auto dev = device::grid(2, 2);
  const Problem problem{&c, &dev, 1};
  const Certificate cert = certify_depth_lower_bound(problem, 5, 7);
  EXPECT_FALSE(cert.infeasible);
  EXPECT_FALSE(cert.certified());
}

TEST(Certify, WorksAcrossEncodings) {
  circuit::Circuit c(3, "triangle");
  c.add_gate("zz", 0, 1);
  c.add_gate("zz", 1, 2);
  c.add_gate("zz", 0, 2);
  const auto dev = device::grid(1, 3);
  const Problem problem{&c, &dev, 1};
  const Result optimal = synthesize_swap_optimal(problem);
  ASSERT_TRUE(optimal.solved);
  for (const auto card :
       {CardEncoding::kSeqCounter, CardEncoding::kTotalizer,
        CardEncoding::kAdder}) {
    EncodingConfig config;
    config.cardinality = card;
    const Certificate cert = certify_swap_lower_bound(
        problem, optimal.depth, optimal.swap_count - 1, config);
    EXPECT_TRUE(cert.certified()) << "cardinality " << static_cast<int>(card);
  }
}

}  // namespace
}  // namespace olsq2::layout
