#include "analysis/lint.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "obs/json_escape.h"

namespace olsq2::analysis {

namespace {

Severity check_severity(std::string_view check) {
  if (check == "invalid-literal" || check == "empty-clause") {
    return Severity::kError;
  }
  if (check == "pure-literal") return Severity::kInfo;
  return Severity::kWarning;
}

std::string clause_to_string(const sat::Clause& clause) {
  std::ostringstream out;
  out << "(";
  for (std::size_t i = 0; i < clause.size(); ++i) {
    if (i > 0) out << " ";
    out << (clause[i].sign() ? "~" : "") << "x" << clause[i].var();
  }
  out << ")";
  return out.str();
}

// 64-bit FNV-1a over the literal codes of a normalized clause.
std::uint64_t clause_hash(const sat::Clause& clause) {
  std::uint64_t h = 1469598103934665603ull;
  for (const sat::Lit l : clause) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(l.code()));
    h *= 1099511628211ull;
  }
  return h;
}

class Reporter {
 public:
  Reporter(LintReport& report, const LintOptions& options)
      : report_(report), options_(options) {}

  void add(const std::string& check, std::string detail) {
    const Severity severity = check_severity(check);
    auto& count = report_.counts[check];
    count++;
    switch (severity) {
      case Severity::kError: report_.errors++; break;
      case Severity::kWarning: report_.warnings++; break;
      case Severity::kInfo: report_.infos++; break;
    }
    if (static_cast<std::size_t>(count) <= options_.max_issues_per_check) {
      report_.issues.push_back({severity, check, std::move(detail)});
    }
  }

 private:
  LintReport& report_;
  const LintOptions& options_;
};

}  // namespace

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kInfo: return "info";
  }
  return "unknown";
}

LintReport lint_cnf(int num_vars, const std::vector<sat::Clause>& clauses,
                    const LintOptions& options) {
  LintReport report;
  report.num_vars = num_vars;
  report.num_clauses = static_cast<std::int64_t>(clauses.size());
  Reporter out(report, options);

  // Per-variable polarity occurrence counts.
  std::vector<std::uint32_t> pos_count(static_cast<std::size_t>(num_vars), 0);
  std::vector<std::uint32_t> neg_count(static_cast<std::size_t>(num_vars), 0);

  // Normalized (sorted, per-clause) copies feed the duplicate and
  // subsumption passes so literal order never hides a finding.
  std::vector<sat::Clause> normalized;
  normalized.reserve(clauses.size());

  for (std::size_t ci = 0; ci < clauses.size(); ++ci) {
    const sat::Clause& clause = clauses[ci];
    report.num_literals += static_cast<std::int64_t>(clause.size());
    if (clause.empty()) {
      out.add("empty-clause", "clause " + std::to_string(ci) + " is empty");
      normalized.emplace_back();
      continue;
    }
    bool malformed = false;
    for (const sat::Lit l : clause) {
      if (l.is_undef() || l.var() < 0 || l.var() >= num_vars) {
        out.add("invalid-literal",
                "clause " + std::to_string(ci) + " references literal code " +
                    std::to_string(l.code()) + " outside [0, 2*" +
                    std::to_string(num_vars) + ")");
        malformed = true;
        break;
      }
    }
    if (malformed) {
      normalized.emplace_back();
      continue;
    }
    sat::Clause sorted = clause;
    std::sort(sorted.begin(), sorted.end());
    bool tautology = false;
    bool duplicate_lit = false;
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      if (sorted[i] == sorted[i + 1]) duplicate_lit = true;
      if (sorted[i] == ~sorted[i + 1]) tautology = true;
    }
    if (tautology) {
      out.add("tautological-clause",
              "clause " + std::to_string(ci) + " " + clause_to_string(clause) +
                  " contains a literal and its negation");
    }
    if (duplicate_lit) {
      out.add("duplicate-literal",
              "clause " + std::to_string(ci) + " " + clause_to_string(clause) +
                  " repeats a literal");
      sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    }
    for (const sat::Lit l : sorted) {
      if (l.sign()) {
        neg_count[static_cast<std::size_t>(l.var())]++;
      } else {
        pos_count[static_cast<std::size_t>(l.var())]++;
      }
    }
    normalized.push_back(std::move(sorted));
  }

  // Duplicate clauses: identical normalized literal sets.
  {
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
    for (std::size_t ci = 0; ci < normalized.size(); ++ci) {
      if (normalized[ci].empty()) continue;
      auto& bucket = buckets[clause_hash(normalized[ci])];
      for (const std::size_t prev : bucket) {
        if (normalized[prev] == normalized[ci]) {
          out.add("duplicate-clause",
                  "clause " + std::to_string(ci) + " duplicates clause " +
                      std::to_string(prev) + " " +
                      clause_to_string(normalized[ci]));
          break;
        }
      }
      bucket.push_back(ci);
    }
  }

  // Subsumption by unit and binary clauses: any clause that contains all
  // literals of a distinct unit/binary clause is redundant.
  {
    std::unordered_set<std::int64_t> binary;  // packed (code0, code1), sorted
    std::unordered_set<std::int32_t> units;
    auto pack = [](sat::Lit a, sat::Lit b) {
      if (b < a) std::swap(a, b);
      return (static_cast<std::int64_t>(a.code()) << 32) | b.code();
    };
    for (const sat::Clause& c : normalized) {
      if (c.size() == 1) units.insert(c[0].code());
      if (c.size() == 2) binary.insert(pack(c[0], c[1]));
    }
    for (std::size_t ci = 0; ci < normalized.size(); ++ci) {
      const sat::Clause& c = normalized[ci];
      if (c.size() < 2 || c.size() > options.subsumption_max_clause_len) {
        continue;
      }
      bool flagged = false;
      if (!units.empty()) {
        for (const sat::Lit l : c) {
          if (units.count(l.code()) != 0) {
            out.add("subsumed-clause",
                    "clause " + std::to_string(ci) + " " +
                        clause_to_string(c) + " is subsumed by unit clause (" +
                        (l.sign() ? "~" : "") + "x" + std::to_string(l.var()) +
                        ")");
            flagged = true;
            break;
          }
        }
      }
      if (flagged || c.size() == 2 || binary.empty()) continue;
      for (std::size_t i = 0; i < c.size() && !flagged; ++i) {
        for (std::size_t j = i + 1; j < c.size(); ++j) {
          if (binary.count(pack(c[i], c[j])) != 0) {
            out.add("subsumed-clause",
                    "clause " + std::to_string(ci) + " " +
                        clause_to_string(c) + " is subsumed by binary clause " +
                        clause_to_string({c[i], c[j]}));
            flagged = true;
            break;
          }
        }
      }
    }
  }

  // Variable occurrence checks.
  for (int v = 0; v < num_vars; ++v) {
    const std::uint32_t pos = pos_count[static_cast<std::size_t>(v)];
    const std::uint32_t neg = neg_count[static_cast<std::size_t>(v)];
    if (pos == 0 && neg == 0) {
      out.add("unused-var",
              "variable x" + std::to_string(v) + " occurs in no clause");
    } else if (pos == 0 || neg == 0) {
      out.add("pure-literal", "variable x" + std::to_string(v) +
                                  " occurs only " +
                                  (pos == 0 ? "negated" : "positive") + " (" +
                                  std::to_string(pos + neg) + " occurrences)");
    }
  }

  return report;
}

std::string LintReport::to_json() const {
  std::ostringstream out;
  out << "{\"num_vars\":" << num_vars << ",\"num_clauses\":" << num_clauses
      << ",\"num_literals\":" << num_literals << ",\"errors\":" << errors
      << ",\"warnings\":" << warnings << ",\"infos\":" << infos
      << ",\"counts\":{";
  bool first = true;
  for (const auto& [check, count] : counts) {
    if (!first) out << ",";
    first = false;
    out << "\"" << obs::json_escape(check) << "\":" << count;
  }
  out << "},\"issues\":[";
  first = true;
  for (const LintIssue& issue : issues) {
    if (!first) out << ",";
    first = false;
    out << "{\"severity\":\"" << severity_name(issue.severity)
        << "\",\"check\":\"" << obs::json_escape(issue.check)
        << "\",\"detail\":\"" << obs::json_escape(issue.detail) << "\"}";
  }
  out << "]}";
  return out.str();
}

}  // namespace olsq2::analysis
