// Unsigned bit-vector atoms, bit-blasted into CNF (the paper's winning
// variable encoding: mapping and time variables become bit-vectors of width
// ceil(log2 |P|) and ceil(log2 (T_UB)) respectively).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "encode/cnf.h"

namespace olsq2::encode {

class BitVec {
 public:
  BitVec() = default;

  /// Fresh unconstrained bit-vector of the given width (LSB first).
  static BitVec fresh(CnfBuilder& b, int width);

  /// Constant bit-vector.
  static BitVec constant(CnfBuilder& b, std::uint64_t value, int width);

  /// Wrap existing literals (LSB first) as a bit-vector.
  static BitVec from_bits(std::vector<Lit> bits);

  /// Zero-extend to the given width.
  void pad_to(CnfBuilder& b, int width);

  int width() const { return static_cast<int>(bits_.size()); }
  Lit bit(int i) const { return bits_[i]; }
  std::span<const Lit> bits() const { return bits_; }

  /// Reified equality with a constant; results are cached per value so
  /// repeated queries (e.g. pi == p for every edge endpoint) are cheap.
  Lit eq_const(CnfBuilder& b, std::uint64_t value) const;

  /// Reified equality with another bit-vector of the same width.
  Lit eq(CnfBuilder& b, const BitVec& other) const;

  /// Reified unsigned comparison with a constant: (*this <= c).
  Lit ule_const(CnfBuilder& b, std::uint64_t c) const;
  /// Reified unsigned comparison with a constant: (*this < c).
  Lit ult_const(CnfBuilder& b, std::uint64_t c) const {
    return c == 0 ? b.false_lit() : ule_const(b, c - 1);
  }

  /// Reified unsigned comparison with another bit-vector: (*this < other).
  Lit ult(CnfBuilder& b, const BitVec& other) const;
  /// Reified unsigned comparison with another bit-vector: (*this <= other).
  Lit ule(CnfBuilder& b, const BitVec& other) const;

  /// Hard-assert this bit-vector is < n (domain restriction for values whose
  /// range is not a power of two).
  void assert_lt(CnfBuilder& b, std::uint64_t n) const;

  /// this + other, width grows by one (ripple-carry adder).
  BitVec add(CnfBuilder& b, const BitVec& other) const;

  /// Minimal width holding values 0..n-1.
  static int width_for(std::uint64_t n);

 private:
  std::vector<Lit> bits_;
  // Cache of reified equality literals, keyed by constant value.
  mutable std::unordered_map<std::uint64_t, Lit> eq_cache_;
};

}  // namespace olsq2::encode
