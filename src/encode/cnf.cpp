#include "encode/cnf.h"

namespace olsq2::encode {

Lit CnfBuilder::true_lit() {
  if (true_lit_.is_undef()) {
    true_lit_ = new_lit();
    add({true_lit_});
  }
  return true_lit_;
}

Lit CnfBuilder::mk_and(Lit a, Lit b) {
  if (a == b) return a;
  if (a == ~b) return false_lit();
  const Lit y = new_lit();
  aux_vars_++;
  add({~y, a});
  add({~y, b});
  add({y, ~a, ~b});
  return y;
}

Lit CnfBuilder::mk_or(std::span<const Lit> lits) {
  if (lits.empty()) return false_lit();
  if (lits.size() == 1) return lits[0];
  const Lit y = new_lit();
  aux_vars_++;
  std::vector<Lit> big;
  big.reserve(lits.size() + 1);
  big.push_back(~y);
  for (const Lit l : lits) {
    add({y, ~l});
    big.push_back(l);
  }
  add(std::move(big));
  return y;
}

Lit CnfBuilder::mk_and(std::span<const Lit> lits) {
  if (lits.empty()) return true_lit();
  if (lits.size() == 1) return lits[0];
  const Lit y = new_lit();
  aux_vars_++;
  std::vector<Lit> big;
  big.reserve(lits.size() + 1);
  big.push_back(y);
  for (const Lit l : lits) {
    add({~y, l});
    big.push_back(~l);
  }
  add(std::move(big));
  return y;
}

Lit CnfBuilder::mk_xor(Lit a, Lit b) {
  if (a == b) return false_lit();
  if (a == ~b) return true_lit();
  const Lit y = new_lit();
  aux_vars_++;
  add({~y, a, b});
  add({~y, ~a, ~b});
  add({y, ~a, b});
  add({y, a, ~b});
  return y;
}

Lit CnfBuilder::mk_ite(Lit c, Lit t, Lit e) {
  if (t == e) return t;
  const Lit y = new_lit();
  aux_vars_++;
  add({~c, ~t, y});
  add({~c, t, ~y});
  add({c, ~e, y});
  add({c, e, ~y});
  // Redundant but propagation-strengthening clauses.
  add({~t, ~e, y});
  add({t, e, ~y});
  return y;
}

}  // namespace olsq2::encode
