#include "layout/portfolio.h"

#include <atomic>
#include <mutex>
#include <thread>

#include "layout/olsq2.h"
#include "layout/tb.h"
#include "obs/obs.h"

namespace olsq2::layout {

std::vector<PortfolioEntry> default_portfolio(Objective objective,
                                              const OptimizerOptions& base) {
  std::vector<PortfolioEntry> entries;
  auto add = [&](EncodingConfig config, sat::Solver::RestartPolicy policy,
                 const std::string& suffix) {
    PortfolioEntry entry;
    entry.config = config;
    entry.options = base;
    entry.options.restart_policy = policy;
    entry.name = config.label() + suffix;
    entries.push_back(std::move(entry));
  };

  EncodingConfig bv_pair;  // defaults
  EncodingConfig bv_chan = bv_pair;
  bv_chan.injectivity = InjectivityEncoding::kChanneling;

  add(bv_pair, sat::Solver::RestartPolicy::kGlucose, "+glucose");
  add(bv_pair, sat::Solver::RestartPolicy::kLuby, "+luby");
  add(bv_chan, sat::Solver::RestartPolicy::kAlternating, "+alt");
  if (objective == Objective::kSwap) {
    EncodingConfig bv_seq = bv_pair;
    bv_seq.cardinality = CardEncoding::kSeqCounter;
    add(bv_seq, sat::Solver::RestartPolicy::kAlternating, "+seq+alt");
  }
  return entries;
}

PortfolioResult synthesize_portfolio(const Problem& problem,
                                     Objective objective,
                                     std::vector<PortfolioEntry> entries) {
  PortfolioResult result;
  result.all.resize(entries.size());
  if (entries.empty()) return result;

  std::atomic<bool> cancel{false};
  std::mutex mutex;
  int winner = -1;

  auto worker = [&](std::size_t index) {
    PortfolioEntry& entry = entries[index];
    entry.options.cancel = &cancel;
    // Each strategy runs on its own thread = its own track in the exported
    // timeline; name the track after the configuration so races read well.
    obs::Trace::instance().set_thread_name("portfolio:" + entry.name);
    obs::Span span("portfolio.worker");
    span.arg("strategy", entry.name);
    Result r = objective == Objective::kDepth
                   ? synthesize_depth_optimal(problem, entry.config,
                                              entry.options)
                   : synthesize_swap_optimal(problem, entry.config,
                                             entry.options);
    span.arg("solved", r.solved);
    span.arg("hit_budget", r.hit_budget);
    std::lock_guard<std::mutex> lock(mutex);
    result.all[index] = std::move(r);
    const Result& mine = result.all[index];
    // A complete (non-budget-hit) optimal answer wins the race; the first
    // one to arrive cancels everyone else.
    if (mine.solved && !mine.hit_budget && winner < 0) {
      winner = static_cast<int>(index);
      cancel.store(true, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    threads.emplace_back(worker, i);
  }
  for (auto& t : threads) t.join();

  if (winner >= 0) {
    result.winner = winner;
    result.best = result.all[winner];
    return result;
  }
  // Nobody finished cleanly: fall back to the best partial answer.
  for (std::size_t i = 0; i < result.all.size(); ++i) {
    const Result& r = result.all[i];
    if (!r.solved) continue;
    const bool better =
        !result.best.solved ||
        (objective == Objective::kDepth
             ? r.depth < result.best.depth
             : r.swap_count < result.best.swap_count ||
                   (r.swap_count == result.best.swap_count &&
                    r.depth < result.best.depth));
    if (better) {
      result.best = r;
      result.winner = static_cast<int>(i);
    }
  }
  return result;
}

}  // namespace olsq2::layout
