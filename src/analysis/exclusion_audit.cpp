#include "analysis/exclusion_audit.h"

#include <string>

#include "sat/solver.h"

namespace olsq2::analysis {

AuditResult audit_mutual_exclusion(
    sat::Solver& solver,
    std::span<const std::pair<sat::Lit, sat::Lit>> pairs,
    std::size_t max_pairs) {
  AuditResult result;
  std::size_t stride = 1;
  if (max_pairs > 0 && pairs.size() > max_pairs) {
    stride = (pairs.size() + max_pairs - 1) / max_pairs;
  }
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (i % stride != 0) {
      result.skipped++;
      continue;
    }
    const auto& [a, b] = pairs[i];
    result.checks++;
    solver.set_conflict_budget(200000);
    const sat::Lit assumptions[2] = {a, b};
    const sat::LBool status = solver.solve(assumptions);
    const std::string pair_name = "pair " + std::to_string(i) + " (lit " +
                                  std::to_string(a.code()) + ", lit " +
                                  std::to_string(b.code()) + ")";
    if (status == sat::LBool::kTrue) {
      result.fail("mutual exclusion violated: " + pair_name +
                  " can both be true");
    } else if (status == sat::LBool::kUndef) {
      result.fail("inconclusive (conflict budget expired): " + pair_name);
    }
  }
  solver.clear_budgets();
  return result;
}

}  // namespace olsq2::analysis
