OPENQASM 2.0;
include "qelib1.inc";
// name: fuzz
// fuzz(2/2)
qreg q[2];
t q[1];
h q[0];
