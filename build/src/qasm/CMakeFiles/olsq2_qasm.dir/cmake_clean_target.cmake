file(REMOVE_RECURSE
  "libolsq2_qasm.a"
)
