// Batch-request manifests: a JSON document describing a list of synthesis
// requests, optionally with expected optima (the golden regression suite
// in tests/golden/ is exactly such a manifest).
//
// Schema:
// {
//   "requests": [
//     {"name": "ghz5",                      // optional label
//      "circuit": "benchmarks/ghz5.qasm",   // path, relative to base dir
//      "device": "grid:1x5",                // preset spec or *.device.json path
//      "swap_duration": 1,                  // optional (default 1, or the
//                                           //  device file's value)
//      "engine": "swap",                    // depth|swap|tb-swap|tb-block|plan
//      "budget_ms": 30000,                  // optional solve budget
//      "certify": false,                    // optional DRAT certificate
//      "expect": {"depth": 5, "swaps": 0}}  // optional golden values
//   ]
// }
//
// Device preset specs: "grid:RxC", "heavyhex:RxC", "ibm_qx2",
// "rigetti_aspen4", "sycamore54", "eagle127", "guadalupe16", "tokyo20";
// anything containing a '/' or ending in ".json" is read as a device JSON
// file (device/json.h).
#pragma once

#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "serve/batch.h"

namespace olsq2::serve {

struct ManifestEntry {
  std::string name;
  std::string circuit_path;
  std::string device_spec;
  int swap_duration = 0;  // 0 = unset (default 1 / device-file value)
  std::string engine = "swap";
  double budget_ms = 0.0;
  bool certify = false;
  bool has_expect = false;
  int expect_depth = -1;  // -1 = not constrained
  int expect_swaps = -1;
};

struct Manifest {
  std::vector<ManifestEntry> entries;
};

/// Parse a manifest document. Throws std::runtime_error on malformed input.
Manifest parse_manifest(std::string_view json);
/// Read and parse a manifest file.
Manifest load_manifest(const std::string& path);

/// Resolve a device spec (preset string or JSON file path). When the spec
/// is a file, `swap_duration_out` receives the file's value (otherwise it
/// is left untouched).
device::Device resolve_device(const std::string& spec,
                              int* swap_duration_out);

/// A manifest materialized into live Requests. Circuits and devices are
/// held in deques so the pointers inside `requests` stay stable.
struct LoadedManifest {
  std::deque<circuit::Circuit> circuits;
  std::deque<device::Device> devices;
  std::vector<Request> requests;   // parallel to `entries`
  std::vector<ManifestEntry> entries;
};

/// Load every circuit/device a manifest references. Relative circuit and
/// device paths are resolved against `base_dir` (empty = cwd).
LoadedManifest materialize_manifest(const Manifest& manifest,
                                    const std::string& base_dir = "");

}  // namespace olsq2::serve
