# Empty dependencies file for qaoa_on_sycamore.
# This may be replaced when dependencies are built.
