#include "analysis/concurrency/lock_order.h"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace olsq2::analysis::concurrency {

namespace {

std::atomic<bool> g_enabled{false};

struct HeldLock {
  const void* lock = nullptr;
  const char* name = "";  // rank names are string literals in the wrappers
  std::string location;
};

/// Per-thread stack of currently held contract locks, outermost first.
/// Maintained whenever tracking is on; on_release also pops entries after
/// tracking is switched off so a toggle mid-hold cannot leave stale frames.
thread_local std::vector<HeldLock> t_held;

struct Edge {
  /// Example acquisition that first established the edge: the full held
  /// stack at that moment, the acquired lock last.
  std::vector<AcquisitionSite> stack;
};

/// Process-wide acquisition graph. Leaky singleton: lock/unlock hooks may
/// run during static destruction (metrics/trace exit dumps), so the state
/// must never be destroyed.
struct State {
  std::mutex mutex;  // tracker internals; exempt from the contract layer
  /// from-rank -> to-rank -> example. Edges are never removed; the graph
  /// accumulates the orders the process has exhibited.
  std::map<std::string, std::map<std::string, Edge>> edges;
  /// Closing edges already reported (one report per distinct inversion).
  std::set<std::pair<std::string, std::string>> reported;
  std::vector<InversionReport> reports;
  bool abort_on_cycle = false;
};

State& state() {
  static State* s = new State;
  return *s;
}

std::vector<AcquisitionSite> snapshot_stack(const HeldLock* extra_lock,
                                            const char* extra_name,
                                            const std::string& extra_loc) {
  std::vector<AcquisitionSite> stack;
  stack.reserve(t_held.size() + 1);
  for (const HeldLock& h : t_held) {
    stack.push_back({h.name, h.location});
  }
  (void)extra_lock;
  stack.push_back({extra_name, extra_loc});
  return stack;
}

void render_stack(std::ostream& out, const std::vector<AcquisitionSite>& stack,
                  const char* indent) {
  for (const AcquisitionSite& site : stack) {
    out << indent << site.lock_name << " acquired at " << site.location
        << "\n";
  }
}

/// Search for a path `from` => `to` in the edge graph (caller holds
/// state().mutex). Returns the edge sequence of one such path, empty when
/// unreachable.
std::vector<CycleEdge> find_path(const State& s, const std::string& from,
                                 const std::string& to) {
  // Iterative DFS with a parent map for path reconstruction.
  std::map<std::string, std::string> parent;  // node -> predecessor
  std::vector<std::string> work{from};
  std::set<std::string> seen{from};
  while (!work.empty()) {
    const std::string node = work.back();
    work.pop_back();
    const auto it = s.edges.find(node);
    if (it == s.edges.end()) continue;
    for (const auto& [next, edge] : it->second) {
      if (!seen.insert(next).second) continue;
      parent[next] = node;
      if (next == to) {
        // Reconstruct to -> ... -> from, then reverse into edge order.
        std::vector<std::string> nodes{to};
        while (nodes.back() != from) nodes.push_back(parent[nodes.back()]);
        std::vector<CycleEdge> path;
        for (std::size_t i = nodes.size(); i-- > 1;) {
          CycleEdge ce;
          ce.from = nodes[i];
          ce.to = nodes[i - 1];
          ce.stack = s.edges.at(ce.from).at(ce.to).stack;
          path.push_back(std::move(ce));
        }
        return path;
      }
      work.push_back(next);
    }
  }
  return {};
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  state();  // force construction before first hook
  g_enabled.store(on, std::memory_order_relaxed);
}

void reset() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.edges.clear();
  s.reported.clear();
  s.reports.clear();
  // Also drop abort-on-cycle: the tracker's own tests construct deliberate
  // inversions and must not die under OLSQ2_LOCK_ORDER=abort (the CI tsan
  // lane exports it process-wide).
  s.abort_on_cycle = false;
}

std::vector<InversionReport> take_reports() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return std::move(s.reports);
}

std::size_t held_count() { return t_held.size(); }

namespace internal {

void on_acquire(const void* lock, const char* name, const char* file,
                int line, bool check_order) {
  if (!enabled()) return;
  std::string location = std::string(file) + ":" + std::to_string(line);
  if (check_order && !t_held.empty()) {
    const std::string from = t_held.back().name;
    const std::string to = name;
    State& s = state();
    std::lock_guard<std::mutex> guard(s.mutex);
    const bool known = s.edges.count(from) != 0 &&
                       s.edges.at(from).count(to) != 0;
    if (!known) {
      // Before recording from -> to, look for the reverse order to => from
      // (a self-edge from == to is the degenerate cycle). Innermost-held
      // edges are sufficient: every adjacent pair in any held stack was
      // itself recorded when acquired, so transitive orders are reachable.
      std::vector<CycleEdge> reverse = from == to
                                           ? std::vector<CycleEdge>{}
                                           : find_path(s, to, from);
      const bool cycle = from == to || !reverse.empty();
      if (cycle && s.reported.insert({from, to}).second) {
        InversionReport report;
        report.lock_name = to;
        report.stack = snapshot_stack(nullptr, name, location);
        report.reverse_path = std::move(reverse);
        std::ostringstream out;
        out << "olsq2 lock-order: potential deadlock acquiring \"" << to
            << "\" while holding \"" << from << "\"";
        if (from == to) {
          out << " (same rank acquired twice)\n";
        } else {
          out << ", but the opposite order \"" << to << "\" => \"" << from
              << "\" was previously recorded\n";
        }
        out << "  this acquisition (outermost lock first):\n";
        render_stack(out, report.stack, "    ");
        for (const CycleEdge& ce : report.reverse_path) {
          out << "  previously recorded \"" << ce.from << "\" -> \"" << ce.to
              << "\" (outermost lock first):\n";
          render_stack(out, ce.stack, "    ");
        }
        report.description = out.str();
        std::cerr << report.description;
        if (s.abort_on_cycle) std::abort();
        s.reports.push_back(std::move(report));
      }
      Edge edge;
      edge.stack = snapshot_stack(nullptr, name, location);
      s.edges[from][to] = std::move(edge);
    }
  }
  t_held.push_back({lock, name, std::move(location)});
}

void on_release(const void* lock) {
  // Runs regardless of enabled(): a disable between lock and unlock must
  // still pop the frame. Out-of-order unlocks are tolerated (search from
  // the innermost end); absent frames (tracking enabled mid-hold) are a
  // no-op.
  for (std::size_t i = t_held.size(); i-- > 0;) {
    if (t_held[i].lock == lock) {
      t_held.erase(t_held.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

void apply_env_config() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): static-initializer probe plus
  // an idempotent lazy call from the first acquisition; no setenv races.
  const char* env = std::getenv("OLSQ2_LOCK_ORDER");
  if (env == nullptr || *env == '\0' || std::string_view(env) == "0") return;
  State& s = state();
  if (std::string_view(env) == "abort") {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.abort_on_cycle = true;
  }
  g_enabled.store(true, std::memory_order_relaxed);
}

namespace {
/// Process-start env probe (mirrors the metrics registry's pattern).
const bool g_env_probe = [] {
  apply_env_config();
  return true;
}();
}  // namespace

}  // namespace internal

}  // namespace olsq2::analysis::concurrency
