// Debug-mode lock-order tracker: the dynamic half of the concurrency
// contract layer (the static half is clang Thread Safety Analysis over the
// annotated primitives in util/sync.h).
//
// Every sync::Mutex carries a *rank name* ("sat.exchange.hub",
// "serve.cache", ...). While tracking is enabled, each acquisition that
// happens with other contract locks held records a directed edge
// held-name -> acquired-name in a process-wide acquisition graph, together
// with an example acquisition stack (the chain of held locks and the source
// locations where each was taken). Before inserting an edge A -> B the
// tracker searches for an existing path B => A; finding one means two
// threads could acquire the same locks in opposite orders, i.e. a potential
// deadlock, and a report carrying *both* acquisition stacks (the new one
// and the recorded example for every edge of the reverse path) is emitted.
//
// Orders are tracked by name, not by instance: two locks with the same name
// form one rank, so acquiring "sat.exchange.hub" twice (two hubs nested)
// is itself reported as a self-cycle. This is the classic lock-hierarchy
// discipline; the per-subsystem hierarchy table lives in DESIGN.md §11.
//
// Activation:
//   OLSQ2_LOCK_ORDER=1       track and report each distinct cycle once to
//                            stderr (checked on first lock acquisition)
//   OLSQ2_LOCK_ORDER=abort   as above, then std::abort() on the first cycle
// or programmatically via set_enabled(true) (tests). Disabled cost: one
// relaxed atomic load per lock/unlock.
//
// The tracker deliberately uses raw std primitives internally (it *is* the
// contract layer's implementation, and wrapping its own mutex in
// sync::Mutex would recurse); tools/synclint_allowlist.txt records the
// exemption.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace olsq2::analysis::concurrency {

/// One held lock in an acquisition stack: rank name plus the source
/// location ("file:line") where this thread acquired it.
struct AcquisitionSite {
  std::string lock_name;
  std::string location;
};

/// One edge of a detected cycle, with the example acquisition stack that
/// first established the edge (outermost lock first; the last element is
/// the acquisition that created the edge).
struct CycleEdge {
  std::string from;
  std::string to;
  std::vector<AcquisitionSite> stack;
};

struct InversionReport {
  /// The acquisition that closed the cycle (lock being acquired last).
  std::string lock_name;
  /// Stack of the offending acquisition, outermost first, including the
  /// closing acquisition itself.
  std::vector<AcquisitionSite> stack;
  /// The pre-existing reverse path lock_name => (innermost held lock),
  /// each edge with its recorded example stack.
  std::vector<CycleEdge> reverse_path;
  /// Human-readable rendering of all of the above.
  std::string description;
};

/// Tracking state. set_enabled(false) keeps the recorded graph (re-enable
/// resumes); use reset() to drop it.
bool enabled();
void set_enabled(bool on);

/// Clear the acquisition graph, the reported-cycle memory, any pending
/// reports, and the abort-on-cycle mode (so tests that build deliberate
/// inversions survive OLSQ2_LOCK_ORDER=abort). Held-lock stacks of live
/// threads are untouched.
void reset();

/// Drain the reports accumulated since the last call (tests; stderr output
/// happens at detection time regardless).
std::vector<InversionReport> take_reports();

/// Number of contract locks currently held by the calling thread. The
/// solver's invariant auditor uses this to enforce that deep structure
/// walks never run under a hub lock (DESIGN.md §11).
std::size_t held_count();

namespace internal {
/// Hooks wired into sync::Mutex / sync::SharedMutex. `lock` identifies the
/// instance, `name` its rank. on_acquire is a no-op while tracking is
/// disabled; `check_order=false` (try_lock: cannot block, cannot deadlock)
/// pushes the held frame without recording an order edge. on_release always
/// pops the frame if present, so toggling tracking mid-hold cannot leave
/// stale frames.
void on_acquire(const void* lock, const char* name, const char* file,
                int line, bool check_order = true);
void on_release(const void* lock);
/// First-use env probe: applies OLSQ2_LOCK_ORDER. Called lazily from
/// on_acquire via a function-local static.
void apply_env_config();
}  // namespace internal

}  // namespace olsq2::analysis::concurrency
