#include "obs/json_scanner.h"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace olsq2::obs {

void JsonScanner::fail(const std::string& message) const {
  throw std::runtime_error(context_ + ": " + message);
}

void JsonScanner::skip_space() {
  while (pos_ < text_.size() &&
         std::isspace(static_cast<unsigned char>(text_[pos_]))) {
    pos_++;
  }
}

bool JsonScanner::accept(char c) {
  skip_space();
  if (pos_ < text_.size() && text_[pos_] == c) {
    pos_++;
    return true;
  }
  return false;
}

void JsonScanner::expect(char c) {
  if (!accept(c)) fail(std::string("expected '") + c + "'");
}

char JsonScanner::peek() {
  skip_space();
  return pos_ < text_.size() ? text_[pos_] : '\0';
}

std::string JsonScanner::string_value() {
  expect('"');
  std::string out;
  while (pos_ < text_.size() && text_[pos_] != '"') {
    char c = text_[pos_++];
    if (c == '\\' && pos_ < text_.size()) {
      const char esc = text_[pos_++];
      switch (esc) {
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        case 'r': c = '\r'; break;
        case 'b': c = '\b'; break;
        case 'f': c = '\f'; break;
        default: c = esc; break;  // \" \\ \/ and anything else verbatim
      }
    }
    out += c;
  }
  expect('"');
  return out;
}

int JsonScanner::int_value() {
  skip_space();
  bool negative = false;
  if (pos_ < text_.size() && text_[pos_] == '-') {
    negative = true;
    pos_++;
  }
  if (pos_ >= text_.size() ||
      !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
    fail("expected integer");
  }
  long value = 0;
  while (pos_ < text_.size() &&
         std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
    value = value * 10 + (text_[pos_++] - '0');
    if (value > 1000000000L) fail("integer out of range");
  }
  return static_cast<int>(negative ? -value : value);
}

double JsonScanner::double_value() {
  skip_space();
  std::size_t start = pos_;
  if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) pos_++;
  auto digits = [&] {
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      pos_++;
    }
  };
  digits();
  if (pos_ < text_.size() && text_[pos_] == '.') {
    pos_++;
    digits();
  }
  if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
    pos_++;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      pos_++;
    }
    digits();
  }
  if (pos_ == start) fail("expected number");
  return std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                     nullptr);
}

bool JsonScanner::bool_value() {
  skip_space();
  if (text_.substr(pos_, 4) == "true") {
    pos_ += 4;
    return true;
  }
  if (text_.substr(pos_, 5) == "false") {
    pos_ += 5;
    return false;
  }
  fail("expected true/false");
}

void JsonScanner::skip_value() {
  const char c = peek();
  if (c == '"') {
    string_value();
  } else if (c == '{') {
    expect('{');
    if (!accept('}')) {
      do {
        string_value();
        expect(':');
        skip_value();
      } while (accept(','));
      expect('}');
    }
  } else if (c == '[') {
    expect('[');
    if (!accept(']')) {
      do {
        skip_value();
      } while (accept(','));
      expect(']');
    }
  } else if (c == 't' || c == 'f') {
    bool_value();
  } else if (text_.substr(pos_, 4) == "null") {
    pos_ += 4;
  } else {
    double_value();
  }
}

std::string_view JsonScanner::raw_value() {
  skip_space();
  const std::size_t start = pos_;
  skip_value();
  return text_.substr(start, pos_ - start);
}

bool JsonScanner::at_end() {
  skip_space();
  return pos_ >= text_.size();
}

}  // namespace olsq2::obs
