// Shared types for the layout synthesis engines.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "circuit/circuit.h"
#include "device/device.h"
#include "layout/fdvar.h"
#include "sat/solver.h"

namespace olsq2::layout {

/// One layout synthesis instance.
struct Problem {
  const circuit::Circuit* circuit = nullptr;
  const device::Device* device = nullptr;
  /// SWAP gate duration S_D in time steps (1 for QAOA where the SWAP merges
  /// with the phase-splitting gate, 3 = CNOT decomposition otherwise).
  int swap_duration = 1;
};

/// An inserted SWAP gate: device edge index plus the time step (or block
/// transition index, for transition-based results) at which it finishes.
struct SwapOp {
  int edge = -1;
  int end_time = -1;
};

/// Telemetry for one incremental SAT call inside an optimizer loop: which
/// bounds were assumed, what came back, and what it cost. The sequence of
/// these records is the textual form of the Pareto-sweep timeline the
/// tracing layer renders (obs/, OLSQ2_TRACE).
struct SolveCall {
  int depth_bound = -1;  // assumed depth bound (block bound for TB); -1 none
  int swap_bound = -1;   // assumed SWAP bound; -1 none
  char status = '?';     // 'S' = SAT, 'U' = UNSAT, '?' = budget expired,
                         // 'P' = pruned by a shared bound fact (no SAT call)
  std::uint64_t conflicts = 0;     // conflicts delta for this call
  std::uint64_t propagations = 0;  // propagations delta for this call
  std::uint64_t decisions = 0;     // decisions delta for this call
  std::uint64_t imported = 0;      // clauses adopted from the exchange
  std::uint64_t exported = 0;      // clauses shared with the exchange
  double wall_ms = 0.0;
};

/// Synthesis output: qubit mapping per time step, gate schedule and SWAPs
/// (paper §II-A). For transition-based results, "time" means block index
/// and `mapping` has one entry per block.
struct Result {
  bool solved = false;
  bool transition_based = false;
  int depth = 0;       // circuit depth T (or block count for TB results)
  int swap_count = 0;
  std::vector<int> gate_time;             // t_g for every gate
  std::vector<std::vector<int>> mapping;  // mapping[t][q] = physical qubit
  std::vector<SwapOp> swaps;

  // Search diagnostics.
  double wall_ms = 0.0;
  int sat_calls = 0;
  std::uint64_t conflicts = 0;
  bool hit_budget = false;
  /// Per-call telemetry, one entry per incremental SAT call in order.
  std::vector<SolveCall> calls;
  /// (depth, swap) points discovered by the 2-D Pareto sweep (§III-B2).
  std::vector<std::pair<int, int>> pareto;
};

/// How mapping injectivity (paper §II-A constraint 1) is encoded.
enum class InjectivityEncoding {
  kPairwise,     // pairwise disequalities (the paper's formulation)
  kChanneling,   // inverse-function pi_inv(pi(q,t),t) = q (the EUF analog)
  kAmoPerQubit,  // commander at-most-one occupant per physical qubit:
                 // Θ(|Q||P|) clauses/step vs Θ(|Q|²|P|) for pairwise -
                 // decisive on 50+ qubit devices
};

/// How the SWAP-count cardinality constraint (paper Eq. 5) is encoded.
enum class CardEncoding {
  kSeqCounter,  // Sinz sequential counter in CNF (the paper's choice)
  kTotalizer,   // sorted outputs; enables incremental assumption bounds
  kAdder,       // binary adder network (the AtMost / PB-theory analog)
};

/// Whether per-gate space variables are used (original OLSQ) or inferred
/// from mapping + time variables (OLSQ2, paper improvement 1).
enum class Formulation { kOlsq2, kOlsqBaseline };

struct EncodingConfig {
  Formulation formulation = Formulation::kOlsq2;
  VarEncoding vars = VarEncoding::kBinary;
  // Pairwise disequalities, as in the paper's OLSQ2(bv) configuration. The
  // binary forbidden-pair clauses propagate hard and measure most robust
  // across instance families; kAmoPerQubit trades clause count for
  // commander indirection and wins only when |Q| is much smaller than |P|
  // (see the encoding ablation in EXPERIMENTS.md).
  InjectivityEncoding injectivity = InjectivityEncoding::kPairwise;
  CardEncoding cardinality = CardEncoding::kTotalizer;

  std::string label() const;
};

/// Options for the iterative optimization loops (paper §III-B).
struct OptimizerOptions {
  /// Wall-clock budget for the whole optimization; <=0 means unlimited.
  double time_budget_ms = 0.0;
  /// Geometric relaxation factors for the depth bound.
  double relax_small = 1.3;  // applied while T_B < 100
  double relax_large = 1.1;
  /// Reuse one solver across bound iterations (incremental solving). The
  /// ablation bench turns this off to measure its contribution.
  bool incremental = true;
  /// Extra depth steps to explore in the 2-D Pareto sweep after the swap
  /// count stops improving (0 = stop at first non-improvement, the paper's
  /// termination rule).
  int pareto_patience = 0;
  /// Restart strategy for the underlying CDCL solver.
  sat::Solver::RestartPolicy restart_policy =
      sat::Solver::RestartPolicy::kGlucose;
  /// Optional externally-owned cancellation flag (portfolio solving). When
  /// it turns true, the optimizer unwinds as if its budget expired.
  const std::atomic<bool>* cancel = nullptr;
  /// Concurrent speculative bound probes inside the optimizer loops (1 =
  /// the classic sequential relax-then-decrement chain). Each probe owns a
  /// cloned model; SAT/UNSAT monotonicity (§III-B) reconciles the results
  /// of every round, so the optimum is identical to the sequential path.
  int parallel_probes = 1;
  /// Externally-supplied upper bound on the SWAP optimum (-1 = none), e.g.
  /// the planning engine's anytime incumbent. The SWAP descent "jump
  /// probes" this bound once per depth sweep before the one-by-one
  /// decrement: SAT lets the incumbent jump straight down, UNSAT falls
  /// back to the classic descent (and records a true bound fact). Sound
  /// for ANY hint value - a wrong hint costs one extra SAT call and can
  /// never change the reported optimum.
  int swap_upper_hint = -1;
  /// VSIDS tie-breaking jitter seed (0 = none). Distinct seeds diversify
  /// portfolio entries; a fixed seed reproduces a run exactly.
  std::uint64_t seed = 0;
  /// Reproducibility mode: the solver never adopts foreign clauses (their
  /// arrival timing is scheduler-dependent), removing run-to-run
  /// nondeterminism in the search. Bound facts still flow - they can only
  /// skip SAT calls whose answer is already proven, never change optima.
  bool deterministic = false;
  /// Cooperative sharing hub (learnt clauses + objective-bound facts)
  /// connecting portfolio strategies and speculative probes. Owned by the
  /// caller; nullptr = no sharing. synthesize_portfolio installs one
  /// automatically; standalone parallel_probes runs create a private hub.
  sat::ClauseExchange* exchange = nullptr;
};

}  // namespace olsq2::layout
