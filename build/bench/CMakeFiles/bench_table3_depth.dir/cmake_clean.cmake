file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_depth.dir/bench_table3_depth.cpp.o"
  "CMakeFiles/bench_table3_depth.dir/bench_table3_depth.cpp.o.d"
  "bench_table3_depth"
  "bench_table3_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
