#include "qasm/lexer.h"

#include <cctype>
#include <stdexcept>

namespace olsq2::qasm {

std::vector<Token> tokenize(std::string_view src) {
  std::vector<Token> tokens;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      line++;
      i++;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      i++;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') i++;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(src[j])) ||
                       src[j] == '_')) {
        j++;
      }
      tokens.push_back({TokenKind::kIdentifier,
                        std::string(src.substr(i, j - i)), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      std::size_t j = i;
      while (j < n && (std::isdigit(static_cast<unsigned char>(src[j])) ||
                       src[j] == '.' || src[j] == 'e' || src[j] == 'E' ||
                       ((src[j] == '+' || src[j] == '-') && j > i &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E')))) {
        j++;
      }
      tokens.push_back({TokenKind::kNumber, std::string(src.substr(i, j - i)),
                        line});
      i = j;
      continue;
    }
    if (c == '"') {
      std::size_t j = i + 1;
      while (j < n && src[j] != '"') j++;
      if (j >= n) throw std::runtime_error("qasm: unterminated string");
      tokens.push_back({TokenKind::kString,
                        std::string(src.substr(i + 1, j - i - 1)), line});
      i = j + 1;
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      tokens.push_back({TokenKind::kSymbol, "->", line});
      i += 2;
      continue;
    }
    static constexpr std::string_view kSingles = ";,()[]{}+-*/^=<>";
    if (kSingles.find(c) != std::string_view::npos) {
      tokens.push_back({TokenKind::kSymbol, std::string(1, c), line});
      i++;
      continue;
    }
    throw std::runtime_error("qasm: illegal character '" + std::string(1, c) +
                             "' at line " + std::to_string(line));
  }
  tokens.push_back({TokenKind::kEof, "", line});
  return tokens;
}

}  // namespace olsq2::qasm
