// Mutual-exclusion audit: the semantic recognizer for the mapping
// injectivity constraints (paper §II-A constraint 1).
//
// Every injectivity encoding — pairwise disequalities, channeling through
// pi_inv, commander at-most-one — must make each "pin pair" (two program
// qubits claiming the same physical qubit at the same time step) jointly
// infeasible. The audit discharges each pair through the model's own
// solver under assumptions {a, b}: UNSAT proves the exclusion is covered
// regardless of which clause form encodes it. Layout models expose their
// obligation pairs via Model::injectivity_obligations().
#pragma once

#include <span>
#include <utility>

#include "analysis/audit.h"
#include "sat/types.h"

namespace olsq2::sat {
class Solver;
}

namespace olsq2::analysis {

/// Verify that no pair (a, b) can be simultaneously true in `solver`.
/// When `max_pairs` > 0 and there are more obligations than that, the list
/// is sampled with an even stride (deterministic); skipped obligations are
/// counted in the result. Learnt clauses persist across checks, so later
/// pairs are usually decided by unit propagation alone.
AuditResult audit_mutual_exclusion(
    sat::Solver& solver,
    std::span<const std::pair<sat::Lit, sat::Lit>> pairs,
    std::size_t max_pairs = 0);

}  // namespace olsq2::analysis
