#include "circuit/circuit.h"

#include <cassert>

namespace olsq2::circuit {

int Circuit::num_two_qubit_gates() const {
  int count = 0;
  for (const Gate& g : gates_) count += g.is_two_qubit() ? 1 : 0;
  return count;
}

void Circuit::add_gate(std::string name, int q, std::string params) {
  assert(q >= 0 && q < num_qubits_);
  gates_.push_back(Gate{std::move(name), q, -1, std::move(params)});
}

void Circuit::add_gate(std::string name, int q0, int q1, std::string params) {
  assert(q0 >= 0 && q0 < num_qubits_);
  assert(q1 >= 0 && q1 < num_qubits_);
  assert(q0 != q1);
  gates_.push_back(Gate{std::move(name), q0, q1, std::move(params)});
}

std::string Circuit::label() const {
  return name_ + "(" + std::to_string(num_qubits_) + "/" +
         std::to_string(num_gates()) + ")";
}

}  // namespace olsq2::circuit
