// Cooperative-portfolio scaling study: wall-clock for the bundled QASM
// benchmarks when the portfolio runs 1, 2, and 4 cooperating strategies on
// one shared clause/bound-fact exchange, plus the exchange traffic that
// paid for it. Emits BENCH_parallel.json (see --out) so runs are
// machine-comparable; `make bench_parallel_json` regenerates it.
//
// Usage: bench_parallel [--out=FILE] [--budget-ms=N] [--runs=N]
//   --out        JSON output path (default BENCH_parallel.json)
//   --budget-ms  per-run optimizer budget (default bench::case_budget_ms())
//   --runs       repetitions per configuration; the median is reported
//                (default 3)
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "device/presets.h"
#include "layout/portfolio.h"
#include "qasm/parser.h"

#ifndef OLSQ2_BENCHMARK_DIR
#error "OLSQ2_BENCHMARK_DIR must be defined by the build"
#endif

namespace {

using namespace olsq2;

struct Case {
  std::string name;
  std::string qasm;
  std::string device_name;
  device::Device device;
  layout::Objective objective;
};

struct Sample {
  int entries = 0;
  std::vector<double> runs_ms;
  double median_ms = 0;
  bool solved = false;
  int depth = -1;
  int swap_count = -1;
  sat::ClauseExchange::Traffic traffic;  // from the median run's race
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// First `count` cooperating strategies: cycle the default portfolio with
/// distinct seeds when more entries are requested than it defines.
std::vector<layout::PortfolioEntry> take_entries(layout::Objective objective,
                                                 int count, double budget_ms) {
  layout::OptimizerOptions base;
  base.time_budget_ms = budget_ms;
  const auto pool = layout::default_portfolio(objective, base);
  std::vector<layout::PortfolioEntry> entries;
  for (int i = 0; i < count; ++i) {
    layout::PortfolioEntry e = pool[i % pool.size()];
    e.options.seed = i + 1;
    if (i >= static_cast<int>(pool.size())) {
      e.name += "#" + std::to_string(i / pool.size());
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

void emit_json(const std::string& path, double budget_ms, int runs,
               const std::vector<Case>& cases,
               const std::vector<std::vector<Sample>>& samples) {
  std::ofstream out(path);
  out << "{" << bench::json_stamp("parallel") << "\"budget_ms\":" << budget_ms
      << ",\"runs\":" << runs << ",\"benchmarks\":[";
  for (std::size_t c = 0; c < cases.size(); ++c) {
    if (c) out << ",";
    out << "{\"name\":\"" << cases[c].name << "\",\"device\":\""
        << cases[c].device_name << "\",\"objective\":\""
        << (cases[c].objective == layout::Objective::kDepth ? "depth" : "swap")
        << "\",\"threads\":[";
    for (std::size_t s = 0; s < samples[c].size(); ++s) {
      const Sample& sm = samples[c][s];
      if (s) out << ",";
      out << "{\"entries\":" << sm.entries << ",\"median_ms\":" << sm.median_ms
          << ",\"runs_ms\":[";
      for (std::size_t r = 0; r < sm.runs_ms.size(); ++r) {
        if (r) out << ",";
        out << sm.runs_ms[r];
      }
      out << "],\"solved\":" << (sm.solved ? "true" : "false")
          << ",\"depth\":" << sm.depth << ",\"swap_count\":" << sm.swap_count
          << ",\"clauses_published\":" << sm.traffic.published
          << ",\"clauses_delivered\":" << sm.traffic.delivered
          << ",\"bound_facts\":" << sm.traffic.bound_facts
          << ",\"bound_pruned\":" << sm.traffic.bound_pruned << "}";
    }
    out << "]}";
  }
  out << "]}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_parallel.json";
  double budget_ms = bench::case_budget_ms();
  int runs = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--budget-ms=", 0) == 0) {
      budget_ms = std::atof(arg.c_str() + 12);
    } else if (arg.rfind("--runs=", 0) == 0) {
      runs = std::max(1, std::atoi(arg.c_str() + 7));
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    }
  }

  const std::string dir = OLSQ2_BENCHMARK_DIR;
  std::vector<Case> cases;
  cases.push_back({"ghz5", dir + "/ghz5.qasm", "grid1x5", device::grid(1, 5),
                   layout::Objective::kDepth});
  cases.push_back({"toffoli_qx2", dir + "/toffoli_qx2.qasm", "ibm_qx2",
                   device::ibm_qx2(), layout::Objective::kDepth});
  cases.push_back({"qaoa_triangle", dir + "/qaoa_triangle.qasm", "grid1x4",
                   device::grid(1, 4), layout::Objective::kSwap});
  cases.push_back({"bv5", dir + "/bv5.qasm", "grid2x3", device::grid(2, 3),
                   layout::Objective::kDepth});

  const std::vector<int> thread_counts = {1, 2, 4};
  bench::Table table(
      {"benchmark", "entries", "median", "speedup", "shared", "pruned"});

  std::vector<std::vector<Sample>> samples(cases.size());
  for (std::size_t c = 0; c < cases.size(); ++c) {
    const Case& cs = cases[c];
    const auto circ = qasm::parse_file(cs.qasm);
    const layout::Problem problem{&circ, &cs.device, 2};
    double base_ms = 0;
    for (const int n : thread_counts) {
      bench::ScopedCaseTrace trace(cs.name + "-x" + std::to_string(n));
      Sample sm;
      sm.entries = n;
      layout::PortfolioResult last;
      for (int r = 0; r < runs; ++r) {
        const double t0 = bench::now_ms();
        last = layout::synthesize_portfolio(
            problem, cs.objective, take_entries(cs.objective, n, budget_ms));
        sm.runs_ms.push_back(bench::now_ms() - t0);
      }
      sm.median_ms = median(sm.runs_ms);
      sm.solved = last.best.solved;
      sm.depth = last.best.solved ? last.best.depth : -1;
      sm.swap_count = last.best.solved ? last.best.swap_count : -1;
      sm.traffic = last.traffic;
      if (n == 1) base_ms = sm.median_ms;
      table.print_row(
          {cs.name, std::to_string(n),
           bench::fmt_ms(sm.median_ms, !sm.solved),
           sm.median_ms > 0 ? bench::fmt_ratio(base_ms / sm.median_ms) : "-",
           std::to_string(sm.traffic.delivered),
           std::to_string(sm.traffic.bound_pruned)});
      samples[c].push_back(std::move(sm));
    }
  }

  emit_json(out_path, budget_ms, runs, cases, samples);
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
