
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/certify.cpp" "src/layout/CMakeFiles/olsq2_layout.dir/certify.cpp.o" "gcc" "src/layout/CMakeFiles/olsq2_layout.dir/certify.cpp.o.d"
  "/root/repo/src/layout/export.cpp" "src/layout/CMakeFiles/olsq2_layout.dir/export.cpp.o" "gcc" "src/layout/CMakeFiles/olsq2_layout.dir/export.cpp.o.d"
  "/root/repo/src/layout/fdvar.cpp" "src/layout/CMakeFiles/olsq2_layout.dir/fdvar.cpp.o" "gcc" "src/layout/CMakeFiles/olsq2_layout.dir/fdvar.cpp.o.d"
  "/root/repo/src/layout/json.cpp" "src/layout/CMakeFiles/olsq2_layout.dir/json.cpp.o" "gcc" "src/layout/CMakeFiles/olsq2_layout.dir/json.cpp.o.d"
  "/root/repo/src/layout/metrics.cpp" "src/layout/CMakeFiles/olsq2_layout.dir/metrics.cpp.o" "gcc" "src/layout/CMakeFiles/olsq2_layout.dir/metrics.cpp.o.d"
  "/root/repo/src/layout/model.cpp" "src/layout/CMakeFiles/olsq2_layout.dir/model.cpp.o" "gcc" "src/layout/CMakeFiles/olsq2_layout.dir/model.cpp.o.d"
  "/root/repo/src/layout/olsq2.cpp" "src/layout/CMakeFiles/olsq2_layout.dir/olsq2.cpp.o" "gcc" "src/layout/CMakeFiles/olsq2_layout.dir/olsq2.cpp.o.d"
  "/root/repo/src/layout/portfolio.cpp" "src/layout/CMakeFiles/olsq2_layout.dir/portfolio.cpp.o" "gcc" "src/layout/CMakeFiles/olsq2_layout.dir/portfolio.cpp.o.d"
  "/root/repo/src/layout/tb.cpp" "src/layout/CMakeFiles/olsq2_layout.dir/tb.cpp.o" "gcc" "src/layout/CMakeFiles/olsq2_layout.dir/tb.cpp.o.d"
  "/root/repo/src/layout/verifier.cpp" "src/layout/CMakeFiles/olsq2_layout.dir/verifier.cpp.o" "gcc" "src/layout/CMakeFiles/olsq2_layout.dir/verifier.cpp.o.d"
  "/root/repo/src/layout/windowed.cpp" "src/layout/CMakeFiles/olsq2_layout.dir/windowed.cpp.o" "gcc" "src/layout/CMakeFiles/olsq2_layout.dir/windowed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sat/CMakeFiles/olsq2_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/encode/CMakeFiles/olsq2_encode.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/olsq2_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/olsq2_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
