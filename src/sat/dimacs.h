// DIMACS CNF import/export.
//
// The paper extracts its benchmark instances with Z3's Solver.sexpr() to
// time encodings in isolation; our analog dumps the bit-blasted instance as
// standard DIMACS so it can be cross-checked with any external SAT solver.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sat/types.h"

namespace olsq2::sat {

struct DimacsProblem {
  int num_vars = 0;
  std::vector<Clause> clauses;
};

/// Serialize a clause set in DIMACS format ("p cnf <vars> <clauses>").
/// Variables are printed 1-based, as the format requires.
std::string to_dimacs(int num_vars, const std::vector<Clause>& clauses);

/// Parse DIMACS text (comments and the problem line are honored; extra
/// whitespace tolerated). The parser is strict: it throws
/// std::runtime_error on a missing/duplicate/malformed problem line, a
/// literal outside the declared variable range, a clause-count mismatch
/// against the header, an empty clause, a non-numeric token, or a trailing
/// clause without its terminating 0 — corrupt instances are rejected
/// rather than silently mis-read.
DimacsProblem parse_dimacs(std::string_view text);

}  // namespace olsq2::sat
