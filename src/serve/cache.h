// Two-tier result cache for the serving layer.
//
// Tier 1 is an in-memory LRU over full cache keys; tier 2 (optional) is a
// persistent on-disk store with one JSON file per entry (schema:
// layout/json.h result_to_cache_json plus the key and any optimality
// certificates). Disk hits are promoted into the LRU.
//
// Keys are the *entire* serialized canonical instance plus engine/config
// tags (serve/canonical.h). Filenames are a 64-bit FNV-1a hash of the key,
// but the stored key is always compared byte-for-byte before a file is
// trusted, so a hash collision degrades to a miss (or an overwrite on
// insert), never to a wrong answer.
//
// Results are stored in canonical space; un-relabeling to the requesting
// instance is the caller's job (serve/transfer.h). Unsolved results are
// never inserted - a budget-limited failure is not a fact about the
// instance.
//
// Observability: every lookup/insert runs under an obs span, and the
// hit/miss/byte counters stream through obs::counter as
// "serve.cache.hits" / "serve.cache.misses" / "serve.cache.bytes".
//
// Concurrency: thread-safe. One annotated mutex ("serve.cache") guards
// both tiers - the LRU list/index and the persistent tier's read/write
// paths (disk I/O happens under the lock: entries are small JSON documents,
// and an unlocked disk tier would let two threads interleave a read-parse
// with an overwrite of the same FNV-named file). Lock hierarchy (DESIGN.md
// §11): serve.cache -> obs.trace / obs.metrics.registry.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "layout/certify.h"
#include "layout/types.h"
#include "util/sync.h"

namespace olsq2::serve {

struct CacheOptions {
  /// In-memory LRU capacity, in entries.
  std::size_t max_entries = 256;
  /// Directory of the persistent tier; empty = memory-only. Created on
  /// first insert.
  std::string disk_dir;
};

struct CacheStats {
  std::uint64_t hits = 0;        // total hits (memory + disk)
  std::uint64_t disk_hits = 0;   // hits served by the persistent tier
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;       // LRU evictions (entry may live on disk)
  std::uint64_t bytes_written = 0;   // persistent-tier writes
  std::uint64_t bytes_read = 0;      // persistent-tier reads (hits only)
  std::uint64_t key_collisions = 0;  // same file hash, different key
};

/// A cached solve: the canonical-space result plus whatever optimality
/// certificates were computed for it (certificates are expensive; caching
/// them is half the point of serving repeat instances).
struct CacheEntry {
  layout::Result result;
  bool has_depth_cert = false;
  bool has_swap_cert = false;
  layout::Certificate depth_cert;
  layout::Certificate swap_cert;
};

class ResultCache {
 public:
  explicit ResultCache(CacheOptions options = {});

  /// Look `key` up in the LRU, then on disk. A hit refreshes LRU recency.
  std::optional<CacheEntry> lookup(const std::string& key)
      OLSQ2_EXCLUDES(mutex_);

  /// Insert/overwrite. Entries with `!entry.result.solved` are rejected
  /// (returns false) - see the header comment.
  bool insert(const std::string& key, const CacheEntry& entry)
      OLSQ2_EXCLUDES(mutex_);

  /// Consistent snapshot of the counters (by value: the live struct is
  /// lock-guarded).
  CacheStats stats() const OLSQ2_EXCLUDES(mutex_) {
    sync::MutexLock lock(mutex_);
    return stats_;
  }
  std::size_t size() const OLSQ2_EXCLUDES(mutex_) {
    sync::MutexLock lock(mutex_);
    return lru_.size();
  }

  /// Serialize an entry as the on-disk JSON document (exposed for tests).
  static std::string entry_to_json(const std::string& key,
                                   const CacheEntry& entry);
  /// Parse entry_to_json output; returns the stored key through `key_out`.
  static CacheEntry entry_from_json(std::string_view json,
                                    std::string* key_out);

  /// Approximate in-memory footprint of the LRU tier (key + serialized
  /// payload size per entry). Maintained only while the metrics registry is
  /// collecting; feeds the serve_cache_bytes gauge.
  std::size_t memory_bytes() const OLSQ2_EXCLUDES(mutex_) {
    sync::MutexLock lock(mutex_);
    return mem_bytes_;
  }

 private:
  struct Node {
    std::string key;
    CacheEntry entry;
    std::size_t bytes = 0;  // approx footprint (0 when metrics are off)
  };

  std::string path_for(const std::string& key) const;
  void touch(const std::string& key, CacheEntry entry) OLSQ2_REQUIRES(mutex_);

  CacheOptions options_;  // immutable after construction
  mutable sync::Mutex mutex_{"serve.cache"};
  CacheStats stats_ OLSQ2_GUARDED_BY(mutex_);
  /// Most-recent-first node list + index into it.
  std::list<Node> lru_ OLSQ2_GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::list<Node>::iterator> index_
      OLSQ2_GUARDED_BY(mutex_);
  std::size_t mem_bytes_ OLSQ2_GUARDED_BY(mutex_) = 0;
};

/// FNV-1a 64-bit hash (filenames of the persistent tier).
std::uint64_t fnv1a64(std::string_view data);

}  // namespace olsq2::serve
