file(REMOVE_RECURSE
  "CMakeFiles/olsq2_sat.dir/dimacs.cpp.o"
  "CMakeFiles/olsq2_sat.dir/dimacs.cpp.o.d"
  "CMakeFiles/olsq2_sat.dir/drat_check.cpp.o"
  "CMakeFiles/olsq2_sat.dir/drat_check.cpp.o.d"
  "CMakeFiles/olsq2_sat.dir/preprocess.cpp.o"
  "CMakeFiles/olsq2_sat.dir/preprocess.cpp.o.d"
  "CMakeFiles/olsq2_sat.dir/proof.cpp.o"
  "CMakeFiles/olsq2_sat.dir/proof.cpp.o.d"
  "CMakeFiles/olsq2_sat.dir/solver.cpp.o"
  "CMakeFiles/olsq2_sat.dir/solver.cpp.o.d"
  "libolsq2_sat.a"
  "libolsq2_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olsq2_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
