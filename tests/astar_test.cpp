// Tests for the A*-based layer router.
#include <gtest/gtest.h>

#include "bengen/workloads.h"
#include "device/presets.h"
#include "astar/astar.h"
#include "layout/tb.h"

namespace olsq2::astar {
namespace {

// Replay validity: mapping tracks swaps; all two-qubit gates adjacent.
void check_routed(const layout::Problem& problem, const AstarResult& result) {
  const circuit::Circuit& in = *problem.circuit;
  const device::Device& dev = *problem.device;
  std::vector<int> phys = result.initial_mapping;
  std::vector<int> prog(dev.num_qubits(), -1);
  for (int q = 0; q < in.num_qubits(); ++q) {
    ASSERT_EQ(prog[phys[q]], -1);
    prog[phys[q]] = q;
  }
  int swaps = 0;
  int gates = 0;
  for (const auto& g : result.routed.gates()) {
    if (g.name == "swap") {
      ASSERT_TRUE(dev.adjacent(g.q0, g.q1));
      std::swap(prog[g.q0], prog[g.q1]);
      if (prog[g.q0] >= 0) phys[prog[g.q0]] = g.q0;
      if (prog[g.q1] >= 0) phys[prog[g.q1]] = g.q1;
      swaps++;
      continue;
    }
    if (g.is_two_qubit()) {
      ASSERT_TRUE(dev.adjacent(g.q0, g.q1));
    }
    gates++;
  }
  EXPECT_EQ(gates, in.num_gates());
  EXPECT_EQ(swaps, result.swap_count);
  EXPECT_EQ(result.final_mapping, phys);
}

TEST(Astar, QaoaOnGridIsValid) {
  const auto c = bengen::qaoa_3regular(8, 1);
  const auto dev = device::grid(3, 3);
  const layout::Problem problem{&c, &dev, 1};
  const AstarResult r = route(problem);
  check_routed(problem, r);
}

TEST(Astar, AdjacentChainNeedsFewSwaps) {
  circuit::Circuit c(4, "nn");
  c.add_gate("cx", 0, 1);
  c.add_gate("cx", 1, 2);
  c.add_gate("cx", 2, 3);
  const auto dev = device::grid(1, 4);
  const layout::Problem problem{&c, &dev, 3};
  const AstarResult r = route(problem);
  check_routed(problem, r);
  EXPECT_LE(r.swap_count, 3);
}

TEST(Astar, QuekoOnAspenIsValid) {
  const auto dev = device::rigetti_aspen4();
  bengen::QuekoSpec spec;
  spec.depth = 5;
  spec.gate_count = 37;
  const auto c = bengen::queko(dev, spec);
  const layout::Problem problem{&c, &dev, 3};
  const AstarResult r = route(problem);
  check_routed(problem, r);
}

TEST(Astar, NeverBeatsTbOlsq2) {
  // Per-layer optimal SWAP insertion is the greedy-partition weakness the
  // paper highlights: globally it cannot beat the exact relaxation.
  for (const std::uint64_t seed : {1ULL, 3ULL, 5ULL}) {
    const auto c = bengen::qaoa_3regular(6, seed);
    const auto dev = device::grid(2, 3);
    const layout::Problem problem{&c, &dev, 1};
    const AstarResult heuristic = route(problem);
    const layout::Result exact = layout::tb_synthesize_swap_optimal(problem);
    ASSERT_TRUE(exact.solved);
    EXPECT_GE(heuristic.swap_count, exact.swap_count) << "seed " << seed;
  }
}

TEST(Astar, DeterministicForFixedSeed) {
  const auto c = bengen::qaoa_3regular(10, 2);
  const auto dev = device::grid(4, 4);
  const layout::Problem problem{&c, &dev, 1};
  const AstarResult a = route(problem);
  const AstarResult b = route(problem);
  EXPECT_EQ(a.swap_count, b.swap_count);
  EXPECT_EQ(a.initial_mapping, b.initial_mapping);
}

TEST(Astar, TinyExpansionCapFallsBackGreedily) {
  const auto c = bengen::qaoa_3regular(10, 4);
  const auto dev = device::grid(4, 4);
  const layout::Problem problem{&c, &dev, 1};
  AstarOptions options;
  options.max_expansions = 1;
  const AstarResult r = route(problem, options);
  check_routed(problem, r);
  EXPECT_GT(r.greedy_fallbacks, 0);
}

TEST(Astar, FallbackResultsAreTaggedNonOptimal) {
  // Regression for the latent per-layer optimality gap: a result that used
  // the greedy fallback must say so via the `optimal` flag, because the
  // differential oracles may then use it only as an upper bound - and even
  // a degraded route must still replay validly and stay above the exact
  // relaxation's optimum.
  const auto c = bengen::qaoa_3regular(6, 4);
  const auto dev = device::grid(2, 3);
  const layout::Problem problem{&c, &dev, 1};
  AstarOptions options;
  options.max_expansions = 1;
  const AstarResult degraded = route(problem, options);
  EXPECT_GT(degraded.greedy_fallbacks, 0);
  EXPECT_FALSE(degraded.optimal);
  check_routed(problem, degraded);
  const layout::Result exact = layout::tb_synthesize_swap_optimal(problem);
  ASSERT_TRUE(exact.solved);
  EXPECT_GE(degraded.swap_count, exact.swap_count);

  // A clean run (no fallback) reports per-layer optimality.
  const AstarResult clean = route(problem);
  EXPECT_EQ(clean.greedy_fallbacks, 0);
  EXPECT_TRUE(clean.optimal);
  EXPECT_GE(clean.swap_count, exact.swap_count);
}

TEST(Astar, RejectsOversizedCircuit) {
  const auto c = bengen::qaoa_3regular(10, 1);
  const auto dev = device::grid(2, 2);
  const layout::Problem problem{&c, &dev, 1};
  EXPECT_THROW(route(problem), std::invalid_argument);
}

}  // namespace
}  // namespace olsq2::astar
