# Empty compiler generated dependencies file for qasm_compile.
# This may be replaced when dependencies are built.
