// End-to-end tests over the shipped QASM corpus: parse from disk, run the
// full synthesis pipeline, verify, and round-trip the routed output.
#include <gtest/gtest.h>

#include "circuit/dependency.h"
#include "device/presets.h"
#include "fuzz/corpus.h"
#include "fuzz/oracles.h"
#include "layout/export.h"
#include "layout/olsq2.h"
#include "layout/verifier.h"
#include "qasm/parser.h"
#include "qasm/writer.h"

namespace olsq2 {
namespace {

#ifndef OLSQ2_BENCHMARK_DIR
#error "OLSQ2_BENCHMARK_DIR must be defined by the build"
#endif

std::string corpus(const std::string& name) {
  return std::string(OLSQ2_BENCHMARK_DIR) + "/" + name;
}

TEST(Corpus, ToffoliQx2EndToEnd) {
  const auto c = qasm::parse_file(corpus("toffoli_qx2.qasm"));
  EXPECT_EQ(c.num_qubits(), 3);
  EXPECT_EQ(c.num_gates(), 15);  // measures and creg are dropped
  const auto dev = device::ibm_qx2();
  const layout::Problem problem{&c, &dev, 3};
  const layout::Result r = layout::synthesize_depth_optimal(problem);
  ASSERT_TRUE(r.solved);
  EXPECT_EQ(r.depth, 11);  // matches the programmatic circuit's optimum
  EXPECT_TRUE(layout::verify(problem, r).ok);
}

TEST(Corpus, Ghz5NeedsNoSwapsOnALine) {
  const auto c = qasm::parse_file(corpus("ghz5.qasm"));
  EXPECT_EQ(c.num_qubits(), 5);
  const auto dev = device::grid(1, 5);
  const layout::Problem problem{&c, &dev, 3};
  const layout::Result r = layout::synthesize_swap_optimal(problem);
  ASSERT_TRUE(r.solved);
  EXPECT_EQ(r.swap_count, 0);
  const circuit::DependencyGraph deps(c);
  EXPECT_EQ(r.depth, deps.longest_chain());
}

TEST(Corpus, Bv5StarShape) {
  const auto c = qasm::parse_file(corpus("bv5.qasm"));
  EXPECT_EQ(c.num_qubits(), 6);
  EXPECT_EQ(c.num_two_qubit_gates(), 3);  // secret 10110
  const auto dev = device::ibm_qx2();
  // QX2 has only 5 qubits: must be rejected cleanly.
  const layout::Problem bad{&c, &dev, 3};
  EXPECT_THROW(layout::synthesize_depth_optimal(bad), std::invalid_argument);
  const auto grid = device::grid(2, 3);
  const layout::Problem problem{&c, &grid, 3};
  const layout::Result r = layout::synthesize_depth_optimal(problem);
  ASSERT_TRUE(r.solved);
  EXPECT_TRUE(layout::verify(problem, r).ok);
}

TEST(Corpus, QaoaTriangleForcesSwapOnLine) {
  const auto c = qasm::parse_file(corpus("qaoa_triangle.qasm"));
  EXPECT_EQ(c.num_gates(), 3);
  EXPECT_EQ(c.gate(0).name, "rzz");
  EXPECT_EQ(c.gate(0).params, "0.7");
  const auto line = device::grid(1, 3);
  const layout::Problem problem{&c, &line, 1};
  const layout::Result r = layout::synthesize_swap_optimal(problem);
  ASSERT_TRUE(r.solved);
  EXPECT_EQ(r.swap_count, 1);
  // Routed output round-trips through the parser with the SWAP visible.
  const auto routed = layout::to_physical_circuit(problem, r);
  const auto reparsed = qasm::parse(qasm::write(routed));
  EXPECT_EQ(reparsed.num_gates(), 4);
}

#ifndef OLSQ2_FUZZ_CORPUS_DIR
#error "OLSQ2_FUZZ_CORPUS_DIR must be defined by the build"
#endif

// Replay every committed fuzz-corpus case (tests/corpus/) through the full
// encoding matrix and the verifier. Cases land here in two ways: seeded
// regression instances and minimized repros of fuzzer-discovered bugs - so
// a once-found bug can never silently return.
TEST(FuzzCorpus, HasSeededCases) {
  const auto names = fuzz::list_cases(OLSQ2_FUZZ_CORPUS_DIR);
  EXPECT_GE(names.size(), 10u);
}

TEST(FuzzCorpus, ReplayAllCasesThroughEveryEncoding) {
  const std::string dir = OLSQ2_FUZZ_CORPUS_DIR;
  const auto names = fuzz::list_cases(dir);
  ASSERT_FALSE(names.empty());
  for (const std::string& name : names) {
    SCOPED_TRACE(name);
    const fuzz::Instance instance = fuzz::load_case(
        dir + "/" + name + ".qasm", dir + "/" + name + ".device.json");
    const fuzz::OracleReport report =
        fuzz::check_encoding_differential(instance);
    for (const std::string& e : report.errors) ADD_FAILURE() << e;
    EXPECT_TRUE(report.ok);
  }
}

TEST(FuzzCorpus, ReplayAllCasesThroughEngines) {
  const std::string dir = OLSQ2_FUZZ_CORPUS_DIR;
  for (const std::string& name : fuzz::list_cases(dir)) {
    SCOPED_TRACE(name);
    const fuzz::Instance instance = fuzz::load_case(
        dir + "/" + name + ".qasm", dir + "/" + name + ".device.json");
    const fuzz::OracleReport report = fuzz::check_engine_differential(instance);
    for (const std::string& e : report.errors) ADD_FAILURE() << e;
    EXPECT_TRUE(report.ok);
  }
}

TEST(FuzzCorpus, CasesRoundTripThroughSaveAndLoad) {
  const std::string dir = OLSQ2_FUZZ_CORPUS_DIR;
  const auto names = fuzz::list_cases(dir);
  ASSERT_FALSE(names.empty());
  const std::string tmp = ::testing::TempDir() + "corpus_roundtrip";
  for (const std::string& name : names) {
    SCOPED_TRACE(name);
    const fuzz::Instance loaded = fuzz::load_case(
        dir + "/" + name + ".qasm", dir + "/" + name + ".device.json");
    const auto [qasm_path, json_path] = fuzz::save_case(tmp, name, loaded);
    const fuzz::Instance again = fuzz::load_case(qasm_path, json_path);
    EXPECT_EQ(again.circuit, loaded.circuit);
    EXPECT_EQ(again.device.num_qubits(), loaded.device.num_qubits());
    EXPECT_EQ(again.device.num_edges(), loaded.device.num_edges());
    EXPECT_EQ(again.swap_duration, loaded.swap_duration);
  }
}

}  // namespace
}  // namespace olsq2
