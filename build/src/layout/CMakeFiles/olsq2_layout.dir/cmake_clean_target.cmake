file(REMOVE_RECURSE
  "libolsq2_layout.a"
)
