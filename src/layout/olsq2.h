// High-level OLSQ2 synthesis entry points (paper §III-B).
//
// Depth optimization: start from the dependency lower bound T_LB, relax the
// bound geometrically (x1.3 below 100, x1.1 above) until the first SAT, then
// decrement to the first UNSAT; the last SAT bound is optimal. SWAP
// optimization: 2-D Pareto sweep - at each depth bound run iterative descent
// on the SWAP bound (monotone solution structure, §III-B2), then relax the
// depth and retry, stopping when the SWAP count stops improving or the time
// budget expires. Both loops run on one incrementally-solved model with
// bounds supplied as assumption literals.
#pragma once

#include "layout/model.h"
#include "layout/types.h"

namespace olsq2::layout {

/// Find a depth-optimal layout. `result.solved` is false only if the time
/// budget expired before any satisfying solution was found.
Result synthesize_depth_optimal(const Problem& problem,
                                const EncodingConfig& config = {},
                                const OptimizerOptions& options = {});

/// Pareto sweep over (depth, SWAP count); returns the solution with the
/// fewest SWAPs found (ties broken toward smaller depth). `result.pareto`
/// holds the explored trade-off points.
Result synthesize_swap_optimal(const Problem& problem,
                               const EncodingConfig& config = {},
                               const OptimizerOptions& options = {});

/// One-shot satisfiability check with fixed bounds - the experiment shape
/// used for the paper's encoding studies (Tables I and II). Solves the model
/// with depth horizon `t_ub` and, when `swap_bound >= 0`, a hard SWAP-count
/// constraint in the configured cardinality encoding. Returns the decoded
/// result if SAT.
Result solve_fixed(const Problem& problem, int t_ub, int swap_bound,
                   const EncodingConfig& config = {},
                   double time_budget_ms = 0.0);

}  // namespace olsq2::layout
