// Self-contained on-disk repro cases: <name>.qasm + <name>.device.json.
//
// Every fuzzer-discovered failure is persisted as a pair of files under
// tests/corpus/ that fully determine the instance: the circuit as standard
// OpenQASM (round-trippable through qasm/), and the device topology plus
// SWAP duration as a tiny dependency-free JSON document:
//   {"name": "fuzzdev", "qubits": 4, "swap_duration": 1,
//    "edges": [[0,1],[1,2],[2,3]]}
// corpus_test replays each committed case through the full encoding matrix
// and the verifier, so a once-found bug can never silently return.
#pragma once

#include <string>
#include <vector>

#include "fuzz/generator.h"

namespace olsq2::fuzz {

/// Serialize a device (+ the instance's SWAP duration) as JSON.
std::string device_to_json(const device::Device& device, int swap_duration);

struct DeviceSpec {
  device::Device device;
  int swap_duration = 1;
};

/// Parse the JSON produced by device_to_json. Throws std::runtime_error on
/// malformed input.
DeviceSpec device_from_json(std::string_view json);

/// Write `<dir>/<name>.qasm` and `<dir>/<name>.device.json` (creating the
/// directory if needed). Returns the two paths written.
std::pair<std::string, std::string> save_case(const std::string& dir,
                                              const std::string& name,
                                              const Instance& instance);

/// Load a case from its two files.
Instance load_case(const std::string& qasm_path,
                   const std::string& device_json_path);

/// Case names in `dir` that have both files, sorted (empty when the
/// directory does not exist).
std::vector<std::string> list_cases(const std::string& dir);

/// Convenience: load every case list_cases finds.
std::vector<Instance> load_all_cases(const std::string& dir);

}  // namespace olsq2::fuzz
