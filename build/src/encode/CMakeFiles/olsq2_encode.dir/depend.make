# Empty dependencies file for olsq2_encode.
# This may be replaced when dependencies are built.
