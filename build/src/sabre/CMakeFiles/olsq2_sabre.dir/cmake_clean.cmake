file(REMOVE_RECURSE
  "CMakeFiles/olsq2_sabre.dir/sabre.cpp.o"
  "CMakeFiles/olsq2_sabre.dir/sabre.cpp.o.d"
  "libolsq2_sabre.a"
  "libolsq2_sabre.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olsq2_sabre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
