// Boolean cardinality constraint encodings.
//
// The paper (§III-C) finds that the encoding of "at most k SWAPs" dominates
// solver behaviour: Z3's built-in AtMost (pseudo-Boolean theory) loses to a
// sequential-counter CNF encoding (Sinz, CP'05). We provide:
//   - pairwise and commander at-most-one,
//   - sequential counter at-most-k (the paper's choice),
//   - an adder-network pseudo-Boolean at-most-k (stand-in for the AtMost /
//     PB-theory path the paper measures as the slow alternative),
//   - a totalizer (totalizer.h) whose sorted outputs enable incremental
//     bound tightening via assumptions, used by the iterative-descent
//     optimizer.
#pragma once

#include <span>
#include <vector>

#include "encode/cnf.h"

namespace olsq2::encode {

/// At-most-one via pairwise negative clauses: Θ(n²) clauses, no aux vars.
void at_most_one_pairwise(CnfBuilder& b, std::span<const Lit> lits);

/// At-most-one via commander encoding with the given group size:
/// Θ(n) clauses and Θ(n / group) aux vars.
void at_most_one_commander(CnfBuilder& b, std::span<const Lit> lits,
                           int group_size = 4);

/// Exactly-one: at-least-one clause plus a chosen at-most-one encoding.
enum class AmoKind { kPairwise, kCommander };
void exactly_one(CnfBuilder& b, std::span<const Lit> lits,
                 AmoKind kind = AmoKind::kCommander);

/// At-most-k via the Sinz sequential counter. Emits a hard bound.
void at_most_k_seqcounter(CnfBuilder& b, std::span<const Lit> lits, int k);

/// At-most-k via a binary adder network + comparator (pseudo-Boolean
/// style). Intentionally the heavier encoding; used for the Table II
/// "AtMost" configuration.
void at_most_k_adder(CnfBuilder& b, std::span<const Lit> lits, int k);

/// At-least-k (via at_most_(n-k) over negated literals).
void at_least_k_seqcounter(CnfBuilder& b, std::span<const Lit> lits, int k);

}  // namespace olsq2::encode
