file(REMOVE_RECURSE
  "CMakeFiles/qasm_test.dir/qasm_test.cpp.o"
  "CMakeFiles/qasm_test.dir/qasm_test.cpp.o.d"
  "qasm_test"
  "qasm_test.pdb"
  "qasm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qasm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
