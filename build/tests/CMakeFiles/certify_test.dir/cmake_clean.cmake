file(REMOVE_RECURSE
  "CMakeFiles/certify_test.dir/certify_test.cpp.o"
  "CMakeFiles/certify_test.dir/certify_test.cpp.o.d"
  "certify_test"
  "certify_test.pdb"
  "certify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
