// Concurrency-contract primitives: annotated synchronization wrappers.
//
// Every piece of shared mutable state in this codebase is guarded by one of
// the wrappers below, never by a raw std::mutex (tools/olsq2_synclint
// enforces this; tools/synclint_allowlist.txt lists the few deliberate
// exceptions such as lock-free atomics). The wrappers buy two things:
//
//  * Static checking. The OLSQ2_* macros carry clang Thread Safety
//    Analysis attributes, so `-Wthread-safety -Werror=thread-safety`
//    (a required CI build) rejects code that touches a OLSQ2_GUARDED_BY
//    field without holding its mutex, calls a OLSQ2_REQUIRES method
//    unlocked, or re-enters a OLSQ2_EXCLUDES method with the lock held.
//    On non-clang compilers every macro expands to nothing.
//
//  * Dynamic lock-order checking. Each Mutex carries a rank name; in debug
//    runs (OLSQ2_LOCK_ORDER=1) every acquisition feeds the process-wide
//    acquisition graph in analysis/concurrency/lock_order.h, which reports
//    potential deadlocks (A->B in one thread, B->A in another) with both
//    acquisition stacks. Disabled cost: one relaxed atomic load per
//    lock/unlock on top of the std primitive.
//
// The per-subsystem lock hierarchy (which ranks may nest inside which) is
// documented in DESIGN.md §11; new guarded structures must slot into it.
#pragma once

#include <mutex>
#include <shared_mutex>
#include <source_location>

#include "analysis/concurrency/lock_order.h"

// ---- clang Thread Safety Analysis attributes (no-ops elsewhere) --------

#if defined(__clang__)
#define OLSQ2_TSA(x) __attribute__((x))
#else
#define OLSQ2_TSA(x)  // expands away on gcc/msvc
#endif

/// Declares a class to be a lockable capability ("mutex").
#define OLSQ2_CAPABILITY(x) OLSQ2_TSA(capability(x))
/// RAII type that acquires in its constructor and releases in its
/// destructor (MutexLock below).
#define OLSQ2_SCOPED_CAPABILITY OLSQ2_TSA(scoped_lockable)
/// Field may only be read/written while holding `x`.
#define OLSQ2_GUARDED_BY(x) OLSQ2_TSA(guarded_by(x))
/// Pointee (not the pointer) is guarded by `x`.
#define OLSQ2_PT_GUARDED_BY(x) OLSQ2_TSA(pt_guarded_by(x))
/// Function must be called with the capability held (and does not
/// release it).
#define OLSQ2_REQUIRES(...) OLSQ2_TSA(requires_capability(__VA_ARGS__))
#define OLSQ2_REQUIRES_SHARED(...) \
  OLSQ2_TSA(requires_shared_capability(__VA_ARGS__))
/// Function acquires / releases the capability.
#define OLSQ2_ACQUIRE(...) OLSQ2_TSA(acquire_capability(__VA_ARGS__))
#define OLSQ2_ACQUIRE_SHARED(...) \
  OLSQ2_TSA(acquire_shared_capability(__VA_ARGS__))
#define OLSQ2_RELEASE(...) OLSQ2_TSA(release_capability(__VA_ARGS__))
#define OLSQ2_RELEASE_SHARED(...) \
  OLSQ2_TSA(release_shared_capability(__VA_ARGS__))
#define OLSQ2_TRY_ACQUIRE(...) OLSQ2_TSA(try_acquire_capability(__VA_ARGS__))
/// Function must be called with the capability *not* held (self-deadlock
/// guard for methods that lock internally).
#define OLSQ2_EXCLUDES(...) OLSQ2_TSA(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the given capability.
#define OLSQ2_RETURN_CAPABILITY(x) OLSQ2_TSA(lock_returned(x))
/// Runtime assertion that the capability is held (trusted by the analysis).
#define OLSQ2_ASSERT_CAPABILITY(x) OLSQ2_TSA(assert_capability(x))
/// Escape hatch; every use needs a comment explaining why it is sound.
#define OLSQ2_NO_THREAD_SAFETY_ANALYSIS OLSQ2_TSA(no_thread_safety_analysis)

namespace olsq2::sync {

namespace lo = ::olsq2::analysis::concurrency;

/// std::mutex with a capability attribute and a lock-order rank name.
/// Name instances after their subsystem ("sat.exchange.hub"); same-named
/// locks share a rank, so nesting two of them is itself an order violation.
class OLSQ2_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* name = "unnamed") noexcept : name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock(std::source_location loc = std::source_location::current())
      OLSQ2_ACQUIRE() {
    if (lo::enabled()) {
      lo::internal::on_acquire(this, name_, loc.file_name(),
                               static_cast<int>(loc.line()));
    }
    m_.lock();
  }
  void unlock() OLSQ2_RELEASE() {
    lo::internal::on_release(this);
    m_.unlock();
  }
  /// Never blocks, so it cannot close a deadlock cycle; the tracker records
  /// it as held (edges *from* it still form) but not as an order edge.
  bool try_lock(std::source_location loc = std::source_location::current())
      OLSQ2_TRY_ACQUIRE(true) {
    if (!m_.try_lock()) return false;
    if (lo::enabled()) {
      lo::internal::on_acquire(this, name_, loc.file_name(),
                               static_cast<int>(loc.line()),
                               /*check_order=*/false);
    }
    return true;
  }

  const char* name() const noexcept { return name_; }

 private:
  std::mutex m_;
  const char* name_;
};

/// std::shared_mutex counterpart. Shared (reader) acquisitions participate
/// in lock-order tracking exactly like exclusive ones: a reader blocked on
/// a writer still deadlocks if the orders invert.
class OLSQ2_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(const char* name = "unnamed") noexcept : name_(name) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock(std::source_location loc = std::source_location::current())
      OLSQ2_ACQUIRE() {
    if (lo::enabled()) {
      lo::internal::on_acquire(this, name_, loc.file_name(),
                               static_cast<int>(loc.line()));
    }
    m_.lock();
  }
  void unlock() OLSQ2_RELEASE() {
    lo::internal::on_release(this);
    m_.unlock();
  }
  void lock_shared(std::source_location loc = std::source_location::current())
      OLSQ2_ACQUIRE_SHARED() {
    if (lo::enabled()) {
      lo::internal::on_acquire(this, name_, loc.file_name(),
                               static_cast<int>(loc.line()));
    }
    m_.lock_shared();
  }
  void unlock_shared() OLSQ2_RELEASE_SHARED() {
    lo::internal::on_release(this);
    m_.unlock_shared();
  }

  const char* name() const noexcept { return name_; }

 private:
  std::shared_mutex m_;
  const char* name_;
};

/// Scoped exclusive lock (the only way this codebase takes a Mutex).
class OLSQ2_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex,
                     std::source_location loc = std::source_location::current())
      OLSQ2_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock(loc);
  }
  ~MutexLock() OLSQ2_RELEASE() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Scoped exclusive lock over a SharedMutex.
class OLSQ2_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(
      SharedMutex& mutex,
      std::source_location loc = std::source_location::current())
      OLSQ2_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock(loc);
  }
  ~WriterMutexLock() OLSQ2_RELEASE() { mutex_.unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Scoped shared (reader) lock over a SharedMutex.
class OLSQ2_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(
      SharedMutex& mutex,
      std::source_location loc = std::source_location::current())
      OLSQ2_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared(loc);
  }
  ~ReaderMutexLock() OLSQ2_RELEASE_SHARED() { mutex_.unlock_shared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mutex_;
};

}  // namespace olsq2::sync
