#include "fuzz/corpus.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "qasm/parser.h"
#include "qasm/writer.h"

namespace olsq2::fuzz {

namespace fs = std::filesystem;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("fuzz corpus: cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

std::pair<std::string, std::string> save_case(const std::string& dir,
                                              const std::string& name,
                                              const Instance& instance) {
  fs::create_directories(dir);
  const std::string qasm_path = dir + "/" + name + ".qasm";
  const std::string json_path = dir + "/" + name + ".device.json";
  {
    std::ofstream out(qasm_path);
    if (!out) throw std::runtime_error("fuzz corpus: cannot write " + qasm_path);
    out << qasm::write(instance.circuit);
  }
  {
    std::ofstream out(json_path);
    if (!out) throw std::runtime_error("fuzz corpus: cannot write " + json_path);
    out << device_to_json(instance.device, instance.swap_duration);
  }
  return {qasm_path, json_path};
}

Instance load_case(const std::string& qasm_path,
                   const std::string& device_json_path) {
  circuit::Circuit circuit = qasm::parse(read_file(qasm_path));
  DeviceSpec spec = device_from_json(read_file(device_json_path));
  return Instance{std::move(circuit), std::move(spec.device),
                  spec.swap_duration, /*seed=*/0};
}

std::vector<std::string> list_cases(const std::string& dir) {
  std::vector<std::string> names;
  if (!fs::is_directory(dir)) return names;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const fs::path path = entry.path();
    if (path.extension() != ".qasm") continue;
    const std::string name = path.stem().string();
    if (fs::exists(fs::path(dir) / (name + ".device.json"))) {
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<Instance> load_all_cases(const std::string& dir) {
  std::vector<Instance> instances;
  for (const std::string& name : list_cases(dir)) {
    instances.push_back(load_case(dir + "/" + name + ".qasm",
                                  dir + "/" + name + ".device.json"));
  }
  return instances;
}

}  // namespace olsq2::fuzz
