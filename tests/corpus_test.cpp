// End-to-end tests over the shipped QASM corpus: parse from disk, run the
// full synthesis pipeline, verify, and round-trip the routed output.
#include <gtest/gtest.h>

#include "circuit/dependency.h"
#include "device/presets.h"
#include "layout/export.h"
#include "layout/olsq2.h"
#include "layout/verifier.h"
#include "qasm/parser.h"
#include "qasm/writer.h"

namespace olsq2 {
namespace {

#ifndef OLSQ2_BENCHMARK_DIR
#error "OLSQ2_BENCHMARK_DIR must be defined by the build"
#endif

std::string corpus(const std::string& name) {
  return std::string(OLSQ2_BENCHMARK_DIR) + "/" + name;
}

TEST(Corpus, ToffoliQx2EndToEnd) {
  const auto c = qasm::parse_file(corpus("toffoli_qx2.qasm"));
  EXPECT_EQ(c.num_qubits(), 3);
  EXPECT_EQ(c.num_gates(), 15);  // measures and creg are dropped
  const auto dev = device::ibm_qx2();
  const layout::Problem problem{&c, &dev, 3};
  const layout::Result r = layout::synthesize_depth_optimal(problem);
  ASSERT_TRUE(r.solved);
  EXPECT_EQ(r.depth, 11);  // matches the programmatic circuit's optimum
  EXPECT_TRUE(layout::verify(problem, r).ok);
}

TEST(Corpus, Ghz5NeedsNoSwapsOnALine) {
  const auto c = qasm::parse_file(corpus("ghz5.qasm"));
  EXPECT_EQ(c.num_qubits(), 5);
  const auto dev = device::grid(1, 5);
  const layout::Problem problem{&c, &dev, 3};
  const layout::Result r = layout::synthesize_swap_optimal(problem);
  ASSERT_TRUE(r.solved);
  EXPECT_EQ(r.swap_count, 0);
  const circuit::DependencyGraph deps(c);
  EXPECT_EQ(r.depth, deps.longest_chain());
}

TEST(Corpus, Bv5StarShape) {
  const auto c = qasm::parse_file(corpus("bv5.qasm"));
  EXPECT_EQ(c.num_qubits(), 6);
  EXPECT_EQ(c.num_two_qubit_gates(), 3);  // secret 10110
  const auto dev = device::ibm_qx2();
  // QX2 has only 5 qubits: must be rejected cleanly.
  const layout::Problem bad{&c, &dev, 3};
  EXPECT_THROW(layout::synthesize_depth_optimal(bad), std::invalid_argument);
  const auto grid = device::grid(2, 3);
  const layout::Problem problem{&c, &grid, 3};
  const layout::Result r = layout::synthesize_depth_optimal(problem);
  ASSERT_TRUE(r.solved);
  EXPECT_TRUE(layout::verify(problem, r).ok);
}

TEST(Corpus, QaoaTriangleForcesSwapOnLine) {
  const auto c = qasm::parse_file(corpus("qaoa_triangle.qasm"));
  EXPECT_EQ(c.num_gates(), 3);
  EXPECT_EQ(c.gate(0).name, "rzz");
  EXPECT_EQ(c.gate(0).params, "0.7");
  const auto line = device::grid(1, 3);
  const layout::Problem problem{&c, &line, 1};
  const layout::Result r = layout::synthesize_swap_optimal(problem);
  ASSERT_TRUE(r.solved);
  EXPECT_EQ(r.swap_count, 1);
  // Routed output round-trips through the parser with the SWAP visible.
  const auto routed = layout::to_physical_circuit(problem, r);
  const auto reparsed = qasm::parse(qasm::write(routed));
  EXPECT_EQ(reparsed.num_gates(), 4);
}

}  // namespace
}  // namespace olsq2
