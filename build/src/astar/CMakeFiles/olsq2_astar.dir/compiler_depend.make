# Empty compiler generated dependencies file for olsq2_astar.
# This may be replaced when dependencies are built.
