// Precomputed subarchitecture library: memoized feasibility probes keyed
// by WL-canonical forms (serve/canonical.h).
//
// A ladder probe asks "does the canonical circuit admit a <=k-SWAP
// transition-based solution on this canonical subdevice?". Both sides of
// the key are canonical, so the answer is shared by every isomorphic
// subdevice embedding (a heavy-hex device contains thousands of translated
// copies of each m-vertex shape - one probe answers all of them) and by
// every relabeled/reordered variant of the circuit, across requests and
// engines. Stored SAT results live in canonical space; callers un-relabel
// them through their own witness (serve/transfer.h) before lifting.
//
// Soundness inherits from the canonicalizer's byte-for-byte key contract:
// equal keys mean literally identical canonical instances, so a cache hit
// can never cross genuinely different subproblems. Inexact canonical forms
// only split classes (a missed hit), never merge them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "layout/types.h"
#include "util/sync.h"

namespace olsq2::subarch {

class Library {
 public:
  /// One memoized ladder probe. status 'S' = SAT within the bound
  /// (`result` holds the canonical-space TB solution), 'U' = proven
  /// infeasible at the bound. Budget-expired probes are never stored.
  struct Probe {
    char status = '?';
    layout::Result result;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
  };

  std::optional<Probe> lookup(const std::string& key)
      OLSQ2_EXCLUDES(mutex_);
  void insert(const std::string& key, Probe probe) OLSQ2_EXCLUDES(mutex_);
  Stats stats() const OLSQ2_EXCLUDES(mutex_);
  std::size_t size() const OLSQ2_EXCLUDES(mutex_);

  /// Shared default instance (callers that don't manage library lifetime:
  /// the serve pre-pass wires the Server's own instance instead).
  static Library& process_wide();

 private:
  mutable sync::Mutex mutex_{"subarch.library"};
  std::unordered_map<std::string, Probe> probes_ OLSQ2_GUARDED_BY(mutex_);
  mutable Stats stats_ OLSQ2_GUARDED_BY(mutex_);
};

/// Probe key: canonical subdevice + canonical circuit + swap duration +
/// ladder bound. (Engine-independent: the TB feasibility question is the
/// same arbitration layer both certifying engines reduce to.)
std::string probe_key(const std::string& device_key,
                      const std::string& circuit_key, int swap_duration,
                      int k);

}  // namespace olsq2::subarch
