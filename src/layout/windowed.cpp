#include "layout/windowed.h"

#include <algorithm>
#include <chrono>
#include <memory>

#include "circuit/dependency.h"
#include "layout/tb.h"
#include "obs/obs.h"

namespace olsq2::layout {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

WindowedResult synthesize_windowed_swap(const Problem& problem,
                                        const WindowedOptions& options,
                                        const EncodingConfig& config) {
  obs::Span top_span("windowed.swap");
  const Clock::time_point start = Clock::now();
  auto elapsed_ms = [&] {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
  };
  auto expired = [&] {
    return options.time_budget_ms > 0 && elapsed_ms() >= options.time_budget_ms;
  };

  WindowedResult result;
  const circuit::Circuit& circ = *problem.circuit;
  const circuit::DependencyGraph deps(circ);

  // Split dependency layers into windows of ~gates_per_window gates.
  std::vector<circuit::Circuit> windows;
  {
    circuit::Circuit current(circ.num_qubits(), circ.name() + "_win");
    for (const auto& layer : deps.asap_layers()) {
      if (current.num_gates() > 0 &&
          current.num_gates() + static_cast<int>(layer.size()) >
              options.gates_per_window) {
        windows.push_back(std::move(current));
        current = circuit::Circuit(circ.num_qubits(), circ.name() + "_win");
      }
      for (const int g : layer) {
        const circuit::Gate& gate = circ.gate(g);
        if (gate.is_two_qubit()) {
          current.add_gate(gate.name, gate.q0, gate.q1, gate.params);
        } else {
          current.add_gate(gate.name, gate.q0, gate.params);
        }
      }
    }
    if (current.num_gates() > 0) windows.push_back(std::move(current));
  }
  result.window_count = static_cast<int>(windows.size());
  if (windows.empty()) {
    result.solved = true;
    return result;
  }

  top_span.arg("windows", result.window_count);

  std::vector<int> mapping;  // exit mapping of the previous window
  int window_index = 0;
  for (const circuit::Circuit& window : windows) {
    obs::Span window_span("windowed.window");
    window_span.arg("index", window_index++);
    window_span.arg("gates", window.num_gates());
    if (expired()) {
      result.hit_budget = true;
      result.wall_ms = elapsed_ms();
      return result;
    }
    const Problem sub{&window, problem.device, problem.swap_duration};

    // Block phase: smallest satisfiable block count with the pinned entry.
    std::unique_ptr<TbModel> model;
    int model_blocks = 0;  // capacity of the current model
    int blocks = 1;
    Result best;
    while (true) {
      if (expired()) {
        result.hit_budget = true;
        result.wall_ms = elapsed_ms();
        return result;
      }
      if (model == nullptr || blocks > model_blocks) {
        model_blocks = std::max(blocks, std::max(4, 2 * model_blocks));
        model = std::make_unique<TbModel>(sub, model_blocks, config);
        if (!mapping.empty()) model->pin_initial_mapping(mapping);
      }
      if (options.time_budget_ms > 0) {
        model->solver().set_time_budget(std::chrono::milliseconds(
            static_cast<std::int64_t>(
                std::max(1.0, options.time_budget_ms - elapsed_ms()))));
      }
      sat::LBool status;
      {
        obs::Span span("windowed.solve");
        span.arg("block_bound", blocks);
        status =
            model->solver().solve(std::vector<Lit>{model->block_bound(blocks)});
        span.arg("result", status == sat::LBool::kTrue    ? "sat"
                           : status == sat::LBool::kFalse ? "unsat"
                                                          : "unknown");
      }
      if (status == sat::LBool::kUndef) {
        result.hit_budget = true;
        result.wall_ms = elapsed_ms();
        return result;
      }
      if (status == sat::LBool::kTrue) {
        best = model->extract();
        break;
      }
      blocks++;
    }

    // Swap descent at this block count.
    int incumbent = best.swap_count;
    while (incumbent > 0 && !expired()) {
      obs::Span span("windowed.solve");
      span.arg("block_bound", blocks);
      span.arg("swap_bound", incumbent - 1);
      const sat::LBool status = model->solver().solve(std::vector<Lit>{
          model->block_bound(blocks), model->swap_bound(incumbent - 1)});
      span.arg("result", status == sat::LBool::kTrue ? "sat" : "non-sat");
      if (status != sat::LBool::kTrue) break;
      const Result candidate = model->extract();
      if (candidate.swap_count < best.swap_count) best = candidate;
      incumbent = std::min(incumbent - 1, candidate.swap_count);
    }

    result.window_mappings.push_back(best.mapping.front());
    result.swap_count += best.swap_count;
    mapping = best.mapping.back();
  }

  result.final_mapping = mapping;
  result.solved = true;
  result.wall_ms = elapsed_ms();
  return result;
}

}  // namespace olsq2::layout
