#include "sim/statevector.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "bengen/rng.h"

namespace olsq2::sim {

namespace {

constexpr double kPi = std::numbers::pi;

}  // namespace

double parse_angle(const std::string& text) {
  if (text.empty()) throw std::runtime_error("sim: empty angle");
  std::string s = text;
  double sign = 1.0;
  if (s[0] == '-') {
    sign = -1.0;
    s = s.substr(1);
  }
  if (s == "pi") return sign * kPi;
  const auto slash = s.find('/');
  if (slash != std::string::npos && s.substr(0, slash) == "pi") {
    const double denom = std::stod(s.substr(slash + 1));
    return sign * kPi / denom;
  }
  const auto star = s.find("*pi");
  if (star != std::string::npos && star + 3 == s.size()) {
    return sign * std::stod(s.substr(0, star)) * kPi;
  }
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) throw std::runtime_error("");
    return sign * v;
  } catch (...) {
    throw std::runtime_error("sim: unsupported angle expression '" + text + "'");
  }
}

StateVector::StateVector(int num_qubits)
    : num_qubits_(num_qubits),
      amps_(std::size_t{1} << num_qubits, Amplitude{0.0, 0.0}) {
  assert(num_qubits >= 1 && num_qubits <= 28);
  amps_[0] = 1.0;
}

void StateVector::set_state(std::vector<Amplitude> amps) {
  assert(amps.size() == amps_.size());
  amps_ = std::move(amps);
}

void StateVector::apply_1q(int q, const Amplitude m[2][2]) {
  const std::size_t stride = std::size_t{1} << q;
  for (std::size_t base = 0; base < amps_.size(); base += 2 * stride) {
    for (std::size_t off = 0; off < stride; ++off) {
      const std::size_t i0 = base + off;
      const std::size_t i1 = i0 + stride;
      const Amplitude a = amps_[i0];
      const Amplitude b = amps_[i1];
      amps_[i0] = m[0][0] * a + m[0][1] * b;
      amps_[i1] = m[1][0] * a + m[1][1] * b;
    }
  }
}

void StateVector::apply_cx(int control, int target) {
  const std::size_t cbit = std::size_t{1} << control;
  const std::size_t tbit = std::size_t{1} << target;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if ((i & cbit) != 0 && (i & tbit) == 0) {
      std::swap(amps_[i], amps_[i | tbit]);
    }
  }
}

void StateVector::apply_cz(int q0, int q1) {
  const std::size_t b0 = std::size_t{1} << q0;
  const std::size_t b1 = std::size_t{1} << q1;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if ((i & b0) != 0 && (i & b1) != 0) amps_[i] = -amps_[i];
  }
}

void StateVector::apply_swap(int q0, int q1) {
  const std::size_t b0 = std::size_t{1} << q0;
  const std::size_t b1 = std::size_t{1} << q1;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    const bool has0 = (i & b0) != 0;
    const bool has1 = (i & b1) != 0;
    if (has0 && !has1) {
      std::swap(amps_[i], amps_[(i & ~b0) | b1]);
    }
  }
}

void StateVector::apply_zz(int q0, int q1, double theta) {
  // exp(-i theta/2 Z x Z): phase by parity of the two bits.
  const std::size_t b0 = std::size_t{1} << q0;
  const std::size_t b1 = std::size_t{1} << q1;
  const Amplitude minus = std::polar(1.0, -theta / 2);
  const Amplitude plus = std::polar(1.0, theta / 2);
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    const bool parity = ((i & b0) != 0) != ((i & b1) != 0);
    amps_[i] *= parity ? plus : minus;
  }
}

void StateVector::apply(const circuit::Gate& gate) {
  const std::string& n = gate.name;
  const int q = gate.q0;
  using namespace std::complex_literals;
  if (!gate.is_two_qubit()) {
    if (n == "x") {
      const Amplitude m[2][2] = {{0, 1}, {1, 0}};
      apply_1q(q, m);
    } else if (n == "y") {
      const Amplitude m[2][2] = {{0, -1i}, {1i, 0}};
      apply_1q(q, m);
    } else if (n == "z") {
      const Amplitude m[2][2] = {{1, 0}, {0, -1}};
      apply_1q(q, m);
    } else if (n == "h") {
      const double r = 1.0 / std::sqrt(2.0);
      const Amplitude m[2][2] = {{r, r}, {r, -r}};
      apply_1q(q, m);
    } else if (n == "s") {
      const Amplitude m[2][2] = {{1, 0}, {0, 1i}};
      apply_1q(q, m);
    } else if (n == "sdg") {
      const Amplitude m[2][2] = {{1, 0}, {0, -1i}};
      apply_1q(q, m);
    } else if (n == "t") {
      const Amplitude m[2][2] = {{1, 0}, {0, std::polar(1.0, kPi / 4)}};
      apply_1q(q, m);
    } else if (n == "tdg") {
      const Amplitude m[2][2] = {{1, 0}, {0, std::polar(1.0, -kPi / 4)}};
      apply_1q(q, m);
    } else if (n == "p" || n == "rz" || n == "u1") {
      // rz differs from p only by a global phase - irrelevant for overlap
      // checks up to phase; use the phase-gate convention for both.
      const double theta = parse_angle(gate.params);
      const Amplitude m[2][2] = {{1, 0}, {0, std::polar(1.0, theta)}};
      apply_1q(q, m);
    } else if (n == "rx") {
      const double theta = parse_angle(gate.params) / 2;
      const Amplitude m[2][2] = {{std::cos(theta), -1i * std::sin(theta)},
                                 {-1i * std::sin(theta), std::cos(theta)}};
      apply_1q(q, m);
    } else if (n == "ry") {
      const double theta = parse_angle(gate.params) / 2;
      const Amplitude m[2][2] = {{std::cos(theta), -std::sin(theta)},
                                 {std::sin(theta), std::cos(theta)}};
      apply_1q(q, m);
    } else {
      throw std::runtime_error("sim: unsupported gate '" + n + "'");
    }
    return;
  }
  if (n == "cx" || n == "CX") {
    apply_cx(gate.q0, gate.q1);
  } else if (n == "cz") {
    apply_cz(gate.q0, gate.q1);
  } else if (n == "swap") {
    apply_swap(gate.q0, gate.q1);
  } else if (n == "zz" || n == "rzz") {
    const double theta = gate.params.empty() ? 0.7 : parse_angle(gate.params);
    apply_zz(gate.q0, gate.q1, theta);
  } else {
    throw std::runtime_error("sim: unsupported gate '" + n + "'");
  }
}

void StateVector::apply_circuit(const circuit::Circuit& c) {
  for (const circuit::Gate& g : c.gates()) apply(g);
}

double StateVector::overlap(const StateVector& other) const {
  assert(num_qubits_ == other.num_qubits_);
  Amplitude dot{0.0, 0.0};
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    dot += std::conj(other.amps_[i]) * amps_[i];
  }
  return std::abs(dot);
}

EquivalenceReport check_routed_equivalence(
    const circuit::Circuit& program, const circuit::Circuit& routed,
    const std::vector<int>& initial_mapping,
    const std::vector<int>& final_mapping, const EquivalenceOptions& options) {
  EquivalenceReport report;
  const int n = program.num_qubits();
  const int p = routed.num_qubits();
  if (p > options.max_device_qubits) {
    report.error = "device too large to simulate";
    return report;
  }
  if (static_cast<int>(initial_mapping.size()) != n ||
      static_cast<int>(final_mapping.size()) != n) {
    report.error = "mapping size mismatch";
    return report;
  }

  bengen::Rng rng(options.seed);
  report.worst_overlap = 1.0;
  for (int trial = 0; trial < options.trials; ++trial) {
    // Random product state on the program qubits.
    std::vector<std::pair<Amplitude, Amplitude>> locals(n);
    for (auto& [alpha, beta] : locals) {
      const double theta = rng.unit() * kPi;
      const double phi = rng.unit() * 2 * kPi;
      alpha = std::cos(theta / 2);
      beta = std::polar(std::sin(theta / 2), phi);
    }

    // Expected: simulate the program directly.
    StateVector expected(n);
    {
      std::vector<Amplitude> amps(std::size_t{1} << n);
      for (std::size_t idx = 0; idx < amps.size(); ++idx) {
        Amplitude a{1.0, 0.0};
        for (int q = 0; q < n; ++q) {
          a *= ((idx >> q) & 1) ? locals[q].second : locals[q].first;
        }
        amps[idx] = a;
      }
      expected.set_state(std::move(amps));
      expected.apply_circuit(program);
    }

    // Actual: embed via the initial mapping, run the routed circuit.
    StateVector actual(p);
    {
      std::vector<Amplitude> amps(std::size_t{1} << p, Amplitude{0.0, 0.0});
      for (std::size_t idx = 0; idx < amps.size(); ++idx) {
        Amplitude a{1.0, 0.0};
        bool ancilla_excited = false;
        std::size_t remaining = idx;
        // Check ancillas are |0> and accumulate program-qubit factors.
        for (int q = 0; q < n; ++q) {
          const bool bit = (idx >> initial_mapping[q]) & 1;
          a *= bit ? locals[q].second : locals[q].first;
          remaining &= ~(std::size_t{1} << initial_mapping[q]);
        }
        if (remaining != 0) ancilla_excited = true;
        amps[idx] = ancilla_excited ? Amplitude{0.0, 0.0} : a;
      }
      actual.set_state(std::move(amps));
      actual.apply_circuit(routed);
    }

    // Extract: expected state embedded at the *final* mapping.
    StateVector reference(p);
    {
      std::vector<Amplitude> amps(std::size_t{1} << p, Amplitude{0.0, 0.0});
      const auto& exp_amps = expected.amplitudes();
      for (std::size_t idx = 0; idx < exp_amps.size(); ++idx) {
        std::size_t device_idx = 0;
        for (int q = 0; q < n; ++q) {
          if ((idx >> q) & 1) device_idx |= (std::size_t{1} << final_mapping[q]);
        }
        amps[device_idx] = exp_amps[idx];
      }
      reference.set_state(std::move(amps));
    }

    const double overlap = actual.overlap(reference);
    report.worst_overlap = std::min(report.worst_overlap, overlap);
  }
  report.equivalent = report.worst_overlap >= 1.0 - options.tolerance;
  return report;
}

}  // namespace olsq2::sim
