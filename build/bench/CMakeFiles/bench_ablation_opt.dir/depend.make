# Empty dependencies file for bench_ablation_opt.
# This may be replaced when dependencies are built.
