// Forward RUP (reverse unit propagation) checker for DRAT proofs.
//
// Independent of the solver: its own clause store and unit propagation.
// Each addition step C must be RUP with respect to the current database
// (asserting the negation of every literal of C and propagating to fixpoint
// must yield a conflict); deletions simply drop clauses. A proof certifies
// unsatisfiability when some step derives the empty clause.
#pragma once

#include <vector>

#include "sat/proof.h"
#include "sat/types.h"

namespace olsq2::sat {

struct DratCheckResult {
  bool all_steps_valid = false;
  bool proves_unsat = false;
  /// Index of the first invalid step (-1 if none).
  int first_invalid_step = -1;
};

/// Check `proof` against the original CNF (the clauses the solver was given,
/// pre-normalization is fine - RUP subsumes normalization).
DratCheckResult check_drat(const std::vector<Clause>& original_cnf,
                           const Proof& proof);

}  // namespace olsq2::sat
