// Unit tests for the raw-synchronization-primitive lint (tools/synclint.h):
// comment/string stripping, whole-token matching, allowlist parsing and
// glob semantics, and report rendering.
#include "tools/synclint.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace lint = olsq2::tools::synclint;

namespace {

std::vector<lint::Finding> scan(std::string_view path, std::string_view src,
                                std::string_view allow = "") {
  return lint::scan_source(path, src,
                           lint::parse_allowlist(allow));
}

TEST(Synclint, FindsRawMutexWithLineNumber) {
  const auto findings = scan("a.cpp",
                             "#include <mutex>\n"
                             "\n"
                             "std::mutex m;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "a.cpp");
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_EQ(findings[0].token, "std::mutex");
  EXPECT_FALSE(findings[0].allowed);
}

TEST(Synclint, FindsEveryBannedFamily) {
  const auto findings = scan("a.cpp",
                             "std::mutex a;\n"
                             "std::shared_mutex b;\n"
                             "std::lock_guard<std::mutex> c(a);\n"
                             "std::unique_lock<std::mutex> d(a);\n"
                             "std::condition_variable e;\n"
                             "std::atomic<int> f;\n"
                             "std::atomic_flag g;\n"
                             "pthread_mutex_t h;\n");
  // lock_guard/unique_lock lines each also mention std::mutex.
  EXPECT_EQ(findings.size(), 10u);
}

TEST(Synclint, IgnoresCommentsAndStrings) {
  const auto findings = scan("a.cpp",
                             "// std::mutex in a line comment\n"
                             "/* std::atomic in a block\n"
                             "   comment */\n"
                             "const char* s = \"std::mutex\";\n"
                             "const char* r = R\"(std::condition_variable)\";\n"
                             "char q = 'x'; // 'std::mutex'\n");
  EXPECT_TRUE(findings.empty()) << lint::report(findings);
}

TEST(Synclint, LineNumbersSurviveStripping) {
  const auto findings = scan("a.cpp",
                             "/* multi\n"
                             "   line\n"
                             "   comment */\n"
                             "std::mutex m;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 4);
}

TEST(Synclint, WholeTokenOnly) {
  // std::atomic must not fire inside std::atomic_flag (which has its own
  // entry), nor inside identifiers that merely contain the spelling.
  const auto findings = scan("a.cpp", "std::atomic_flag f;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].token, "std::atomic_flag");
}

TEST(Synclint, SyncWrappersAreClean) {
  const auto findings = scan("a.cpp",
                             "#include \"util/sync.h\"\n"
                             "olsq2::sync::Mutex m{\"demo\"};\n"
                             "olsq2::sync::MutexLock lock(m);\n");
  EXPECT_TRUE(findings.empty()) << lint::report(findings);
}

TEST(Synclint, AllowlistByExactTokenAndGlob) {
  const auto findings = scan("src/obs/metrics.h",
                             "std::atomic<int> v;\n"
                             "std::mutex m;\n",
                             "*src/obs/metrics.h  std::atomic  metric cells\n");
  ASSERT_EQ(findings.size(), 2u);
  // Sorted by line; line 1 is the atomic, line 2 the mutex.
  EXPECT_TRUE(findings[0].allowed);
  EXPECT_EQ(findings[0].reason, "metric cells");
  EXPECT_FALSE(findings[1].allowed) << "std::mutex must not ride along";
}

TEST(Synclint, AllowlistStarTokenCoversAll) {
  const auto findings = scan("src/util/sync.h",
                             "std::mutex m;\nstd::shared_mutex s;\n",
                             "*src/util/sync.h  *  wrapper layer\n");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_TRUE(findings[0].allowed);
  EXPECT_TRUE(findings[1].allowed);
}

TEST(Synclint, AllowlistRequiresReason) {
  EXPECT_THROW(lint::parse_allowlist("src/foo.h  std::mutex\n"),
               std::runtime_error);
  // Comments and blank lines are fine.
  EXPECT_TRUE(lint::parse_allowlist("# comment\n\n").empty());
}

TEST(Synclint, GlobSemantics) {
  EXPECT_TRUE(lint::glob_match("*src/util/sync.h", "src/util/sync.h"));
  EXPECT_TRUE(lint::glob_match("*src/util/sync.h", "/abs/repo/src/util/sync.h"));
  EXPECT_TRUE(lint::glob_match("*src/analysis/concurrency/*",
                               "src/analysis/concurrency/lock_order.cpp"));
  EXPECT_FALSE(lint::glob_match("*src/util/sync.h", "src/util/sync.hpp"));
  EXPECT_FALSE(lint::glob_match("*src/obs/*", "src/sat/solver.h"));
}

TEST(Synclint, ReportNamesFileLineTokenAndCount) {
  const auto findings = scan("bad.cpp", "std::mutex m;\n");
  const std::string text = lint::report(findings);
  EXPECT_NE(text.find("bad.cpp:1"), std::string::npos) << text;
  EXPECT_NE(text.find("std::mutex"), std::string::npos) << text;
  EXPECT_NE(text.find("1 disallowed"), std::string::npos) << text;
  // Allowed findings render nothing.
  const auto ok = scan("src/x.h", "std::atomic<int> v;\n",
                       "*src/x.h  std::atomic  fine\n");
  EXPECT_TRUE(lint::report(ok).empty());
}

}  // namespace
