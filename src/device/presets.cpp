#include "device/presets.h"

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace olsq2::device {

Device grid(int rows, int cols) {
  std::vector<Edge> edges;
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back({id(r, c), id(r, c + 1)});
      if (r + 1 < rows) edges.push_back({id(r, c), id(r + 1, c)});
    }
  }
  return Device("grid" + std::to_string(rows) + "x" + std::to_string(cols),
                rows * cols, std::move(edges));
}

Device ibm_qx2() {
  return Device("qx2", 5, {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4}});
}

Device rigetti_aspen4() {
  std::vector<Edge> edges;
  // Two octagons, qubits 0..7 and 8..15.
  for (int ring = 0; ring < 2; ++ring) {
    const int base = ring * 8;
    for (int i = 0; i < 8; ++i) {
      edges.push_back({base + i, base + (i + 1) % 8});
    }
  }
  // Bridges between the facing sides of the octagons.
  edges.push_back({2, 15});
  edges.push_back({3, 14});
  return Device("aspen4", 16, std::move(edges));
}

Device google_sycamore54() {
  // 6 rows x 9 columns; qubit (r,c) = r*9 + c. Vertical couplers plus
  // diagonal couplers alternating direction by row parity, reproducing the
  // degree-<=4 diamond lattice of the Sycamore processor.
  constexpr int kRows = 6, kCols = 9;
  auto id = [](int r, int c) { return r * kCols + c; };
  std::vector<Edge> edges;
  for (int r = 0; r + 1 < kRows; ++r) {
    for (int c = 0; c < kCols; ++c) {
      edges.push_back({id(r, c), id(r + 1, c)});
      if (r % 2 == 0) {
        if (c + 1 < kCols) edges.push_back({id(r, c), id(r + 1, c + 1)});
      } else {
        if (c - 1 >= 0) edges.push_back({id(r, c), id(r + 1, c - 1)});
      }
    }
  }
  return Device("sycamore", kRows * kCols, std::move(edges));
}

Device ibm_eagle127() {
  // Heavy-hex rows: long rows of 14/15 qubits connected by 4-qubit bridge
  // rows. Row plan (qubit count per row, top to bottom):
  //   14, 4, 15, 4, 15, 4, 15, 4, 15, 4, 15, 4, 14   -> 127 qubits.
  // Long rows occupy columns 0..13 (first), 0..14 (middle), 1..14 (last).
  // Bridge rows attach at columns 0,4,8,12 and 2,6,10,14 alternately.
  std::vector<Edge> edges;
  struct Row {
    int first_qubit;
    int first_col;
    int count;
  };
  std::vector<Row> long_rows;
  std::vector<int> bridge_first;  // first qubit id of each bridge row
  int next = 0;
  for (int i = 0; i < 7; ++i) {
    const int first_col = (i == 6) ? 1 : 0;
    const int count = (i == 0 || i == 6) ? 14 : 15;
    long_rows.push_back({next, first_col, count});
    next += count;
    if (i < 6) {
      bridge_first.push_back(next);
      next += 4;
    }
  }
  // Horizontal edges within long rows.
  for (const Row& row : long_rows) {
    for (int k = 0; k + 1 < row.count; ++k) {
      edges.push_back({row.first_qubit + k, row.first_qubit + k + 1});
    }
  }
  // Bridge edges.
  auto qubit_at_col = [](const Row& row, int col) {
    return row.first_qubit + (col - row.first_col);
  };
  for (int b = 0; b < 6; ++b) {
    const int offset = (b % 2 == 0) ? 0 : 2;
    const Row& above = long_rows[b];
    const Row& below = long_rows[b + 1];
    for (int k = 0; k < 4; ++k) {
      const int col = offset + 4 * k;
      const int bridge = bridge_first[b] + k;
      edges.push_back({qubit_at_col(above, col), bridge});
      edges.push_back({bridge, qubit_at_col(below, col)});
    }
  }
  return Device("eagle", next, std::move(edges));
}

Device heavy_hex(int rows, int cols) {
  std::vector<Edge> edges;
  std::vector<int> row_first(rows);
  std::vector<int> bridge_first(rows > 1 ? rows - 1 : 0);
  int next = 0;
  for (int r = 0; r < rows; ++r) {
    row_first[r] = next;
    next += cols;
    if (r + 1 < rows) {
      const int offset = (r % 2 == 0) ? 0 : 2;
      const int bridges = (cols - 1 - offset) / 4 + 1;
      bridge_first[r] = next;
      next += bridges;
    }
  }
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c + 1 < cols; ++c) {
      edges.push_back({row_first[r] + c, row_first[r] + c + 1});
    }
    if (r + 1 < rows) {
      const int offset = (r % 2 == 0) ? 0 : 2;
      const int bridges = (cols - 1 - offset) / 4 + 1;
      for (int k = 0; k < bridges; ++k) {
        const int col = offset + 4 * k;
        const int bridge = bridge_first[r] + k;
        edges.push_back({row_first[r] + col, bridge});
        edges.push_back({bridge, row_first[r + 1] + col});
      }
    }
  }
  return Device("heavyhex" + std::to_string(rows) + "x" + std::to_string(cols),
                next, std::move(edges));
}

Device ibm_guadalupe16() {
  // Published ibmq_guadalupe coupling map (Falcon r4, heavy-hex 16q).
  return Device("guadalupe", 16,
                {{0, 1},
                 {1, 2},
                 {1, 4},
                 {2, 3},
                 {3, 5},
                 {4, 7},
                 {5, 8},
                 {6, 7},
                 {7, 10},
                 {8, 9},
                 {8, 11},
                 {10, 12},
                 {11, 14},
                 {12, 13},
                 {12, 15},
                 {13, 14}});
}

Device ibm_tokyo20() {
  // Published ibmq_tokyo (Q20) coupling: 4x5 grid plus diagonal couplers.
  return Device(
      "tokyo", 20,
      {{0, 1},   {1, 2},   {2, 3},   {3, 4},   {0, 5},   {1, 6},   {1, 7},
       {2, 6},   {2, 7},   {3, 8},   {3, 9},   {4, 8},   {4, 9},   {5, 6},
       {6, 7},   {7, 8},   {8, 9},   {5, 10},  {5, 11},  {6, 10},  {6, 11},
       {7, 12},  {7, 13},  {8, 12},  {8, 13},  {9, 14},  {10, 11}, {11, 12},
       {12, 13}, {13, 14}, {10, 15}, {11, 16}, {11, 17}, {12, 16}, {12, 17},
       {13, 18}, {13, 19}, {14, 18}, {14, 19}, {15, 16}, {16, 17}, {17, 18},
       {18, 19}});
}

namespace {

/// "grid:2x3" -> (2, 3).
std::pair<int, int> parse_dims(const std::string& spec, std::size_t colon) {
  const std::string dims = spec.substr(colon + 1);
  const std::size_t x = dims.find('x');
  if (x == std::string::npos) {
    throw std::runtime_error("device preset: bad dims '" + spec +
                             "' (want ROWSxCOLS)");
  }
  return {std::stoi(dims.substr(0, x)), std::stoi(dims.substr(x + 1))};
}

}  // namespace

Device preset_by_name(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  if (colon != std::string::npos) {
    if (kind == "grid") {
      const auto [rows, cols] = parse_dims(spec, colon);
      return grid(rows, cols);
    }
    if (kind == "heavyhex") {
      const auto [rows, cols] = parse_dims(spec, colon);
      return heavy_hex(rows, cols);
    }
  }
  if (spec == "ibm_qx2") return ibm_qx2();
  if (spec == "rigetti_aspen4") return rigetti_aspen4();
  if (spec == "sycamore54") return google_sycamore54();
  if (spec == "eagle127") return ibm_eagle127();
  if (spec == "guadalupe16") return ibm_guadalupe16();
  if (spec == "tokyo20") return ibm_tokyo20();
  throw std::runtime_error("device preset: unknown spec '" + spec + "'");
}

}  // namespace olsq2::device
