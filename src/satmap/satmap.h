// SATMap-style layer-sliced mapper (stand-in for Molavi et al.,
// MICRO'22), the second baseline of Table IV.
//
// SATMap slices the circuit into layers and solves each slice with a
// (Max)SAT oracle, threading the mapping from one slice into the next. That
// slicing is precisely the "unnecessary constraint" the OLSQ line of work
// identifies: per-slice optimal SWAP choices are not globally optimal, so
// its SWAP counts upper-bound TB-OLSQ2's. Our reimplementation keeps that
// architecture on top of our CDCL solver: per slice it finds a mapping
// satisfying all two-qubit gates in the slice, reachable from the previous
// mapping through <= R disjoint SWAP layers (R grows on UNSAT), minimizing
// the SWAPs used via totalizer descent.
#pragma once

#include "layout/types.h"

namespace olsq2::satmap {

struct SatmapOptions {
  /// Number of dependency layers grouped into one slice.
  int layers_per_slice = 1;
  /// Wall-clock budget; <=0 unlimited. On expiry `solved` is false.
  double time_budget_ms = 0.0;
  /// Hard cap on SWAP layers between consecutive slices.
  int max_transition_layers = 8;
};

struct SatmapResult {
  bool solved = false;
  int swap_count = 0;
  int slice_count = 0;
  double wall_ms = 0.0;
  bool hit_budget = false;
  std::vector<std::vector<int>> slice_mappings;  // mapping entering each slice
};

SatmapResult route(const layout::Problem& problem,
                   const SatmapOptions& options = {});

}  // namespace olsq2::satmap
