#include "serve/batch.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <stdexcept>
#include <utility>

#include "circuit/dependency.h"
#include "layout/certify.h"
#include "layout/olsq2.h"
#include "layout/tb.h"
#include "plan/plan.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "serve/transfer.h"

namespace olsq2::serve {

const char* engine_tag(Engine engine) {
  switch (engine) {
    case Engine::kDepth: return "depth";
    case Engine::kSwap: return "swap";
    case Engine::kTbSwap: return "tb-swap";
    case Engine::kTbBlock: return "tb-block";
    case Engine::kPlan: return "plan";
  }
  return "?";
}

Engine engine_from_tag(const std::string& tag) {
  if (tag == "depth") return Engine::kDepth;
  if (tag == "swap") return Engine::kSwap;
  if (tag == "tb-swap") return Engine::kTbSwap;
  if (tag == "tb-block") return Engine::kTbBlock;
  if (tag == "plan") return Engine::kPlan;
  throw std::runtime_error("serve: unknown engine '" + tag + "'");
}

namespace {

bool transition_based(Engine engine) {
  // The planning engine emits transition-based results (one SWAP per
  // block transition, unconstrained depth).
  return engine == Engine::kTbSwap || engine == Engine::kTbBlock ||
         engine == Engine::kPlan;
}

layout::Result run_engine(Engine engine, const layout::Problem& problem,
                          const layout::EncodingConfig& config,
                          const layout::OptimizerOptions& options,
                          subarch::SubarchOptions subarch_options) {
  // Transparent subarchitecture pre-pass for the engines whose SWAP
  // optima are reduction-invariant (certified ladder + lift; any failure
  // inside the wrappers degrades to the direct engine below). The
  // time-resolved kSwap/kDepth sweeps are excluded: their depth choice is
  // not invariant under device reduction (DESIGN.md §14.5).
  const bool engage =
      (engine == Engine::kTbSwap || engine == Engine::kPlan) &&
      subarch::should_engage(problem, subarch_options);
  switch (engine) {
    case Engine::kDepth:
      return layout::synthesize_depth_optimal(problem, config, options);
    case Engine::kSwap:
      return layout::synthesize_swap_optimal(problem, config, options);
    case Engine::kTbSwap:
      if (engage) {
        return subarch::tb_synthesize_swap_optimal(problem, config, options,
                                                   subarch_options);
      }
      return layout::tb_synthesize_swap_optimal(problem, config, options);
    case Engine::kTbBlock:
      return layout::tb_synthesize_block_optimal(problem, config, options);
    case Engine::kPlan: {
      plan::PlanOptions popt;
      popt.time_budget_ms = options.time_budget_ms;
      popt.cancel = options.cancel;
      if (options.seed != 0) popt.seed = options.seed;
      // PlanResult::layout reports hit_budget for non-certified plans, so
      // the cache (which skips hit_budget results) never pins one.
      if (engage) {
        return subarch::plan_synthesize(problem, popt, subarch_options)
            .layout;
      }
      return plan::synthesize(problem, popt).layout;
    }
  }
  return {};
}

/// Certificates live in canonical space (like the cached result): the bound
/// they refute is relabeling-invariant, so one DRAT check serves the whole
/// equivalence class.
void maybe_certify(const Request& request, const layout::Problem& canonical,
                   CacheEntry& entry) {
  if (!request.certify || !entry.result.solved || entry.result.hit_budget ||
      transition_based(request.engine)) {
    return;
  }
  const double budget = request.options.time_budget_ms;
  if (request.engine == Engine::kDepth && entry.result.depth >= 1) {
    const circuit::DependencyGraph deps(*canonical.circuit);
    entry.depth_cert = layout::certify_depth_lower_bound(
        canonical, deps.default_upper_bound(), entry.result.depth - 1,
        request.config, budget);
    entry.has_depth_cert = true;
  } else if (request.engine == Engine::kSwap && entry.result.swap_count >= 1) {
    entry.swap_cert = layout::certify_swap_lower_bound(
        canonical, entry.result.depth, entry.result.swap_count - 1,
        request.config, budget);
    entry.has_swap_cert = true;
  }
}

void fill_certs(const CacheEntry& entry, Response& response) {
  response.has_depth_cert = entry.has_depth_cert;
  response.has_swap_cert = entry.has_swap_cert;
  response.depth_cert = entry.depth_cert;
  response.swap_cert = entry.swap_cert;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), cache_(options_.cache) {}

Response Server::serve(const Request& request) {
  return serve_batch({request}).front();
}

std::vector<Response> Server::serve_batch(
    const std::vector<Request>& requests) {
  obs::Span span("serve.batch");
  if (span.live()) {
    span.arg("requests", static_cast<int>(requests.size()));
  }

  // End-to-end request latency: batch entry to the moment the response is
  // filled (cache hits record in the lookup pass, dedup followers when the
  // leader's solve lands), so histogram _count == requests served.
  const auto batch_start = std::chrono::steady_clock::now();
  const bool metered = obs::metrics::enabled();
  auto observe_request = [&] {
    if (!metered) return;
    namespace m = obs::metrics;
    static m::Counter& total = m::Registry::instance().counter(
        "serve_requests_total", "Requests served (cache hits + solves)");
    static m::Histogram& latency = m::Registry::instance().histogram(
        "serve_request_duration_ms",
        "End-to-end latency from batch entry to response fill");
    total.inc();
    latency.observe(std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - batch_start)
                        .count());
  };

  struct Item {
    InstanceCanon canon;
    std::string instance_key;
    std::string key;
  };
  std::vector<Item> items(requests.size());
  std::vector<Response> responses(requests.size());

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Request& req = requests[i];
    if (req.circuit == nullptr || req.device == nullptr) {
      throw std::runtime_error("serve: request without circuit or device");
    }
    Item& item = items[i];
    item.canon = canonicalize(*req.circuit, *req.device, req.swap_duration);
    item.instance_key = item.canon.instance_key();
    item.key = item.instance_key + "|" + engine_tag(req.engine) + "|" +
               req.config.label();
    responses[i].key = item.key;
    responses[i].canonical_exact =
        item.canon.circuit.exact && item.canon.device.exact;
  }

  // Residual work after cache lookups, deduplicated by key. The request
  // that *first* presents a key pays for the solve.
  std::map<std::string, std::vector<std::size_t>> residual;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Request& req = requests[i];
    const layout::Problem original{req.circuit, req.device,
                                   req.swap_duration};
    if (options_.use_cache) {
      const std::uint64_t disk_hits_before = cache_.stats().disk_hits;
      if (std::optional<CacheEntry> entry = cache_.lookup(items[i].key)) {
        // A cached entry may lack a certificate the request wants; treat
        // that as a miss so the solve path can attach one.
        if (!req.certify || entry->has_depth_cert || entry->has_swap_cert ||
            transition_based(req.engine)) {
          responses[i].result =
              untransfer_result(entry->result, items[i].canon, original);
          responses[i].cache_hit = true;
          responses[i].from_disk =
              cache_.stats().disk_hits != disk_hits_before;
          fill_certs(*entry, responses[i]);
          observe_request();
          continue;
        }
      }
    }
    // With the cache off (bench baseline) every request pays its own
    // solve: suffix the grouping key so nothing coalesces.
    std::string group_key = items[i].key;
    if (!options_.use_cache) {
      group_key += '#';
      group_key += std::to_string(i);
    }
    residual[group_key].push_back(i);
  }

  // std::map iteration = key order: equal instances with different engines
  // or configs run back-to-back; begin_problem() fences bound facts at
  // instance boundaries (and at the TB/time-resolved semantic boundary -
  // TB "depth" counts blocks, so TB facts must not prune a time-resolved
  // search). The whole solve phase is one critical section: the hub's
  // fencing protocol is stateful, so a second concurrent batch must not
  // re-fence mid-sequence.
  sync::MutexLock solve_lock(solve_mutex_);
  for (const auto& [key, indices] : residual) {
    const std::size_t leader = indices.front();
    const Request& req = requests[leader];
    const Item& item = items[leader];
    obs::Span solve_span("serve.solve");
    if (solve_span.live()) {
      solve_span.arg("key_hash",
                     static_cast<std::int64_t>(fnv1a64(key) & 0x7fffffff));
      solve_span.arg("engine", engine_tag(req.engine));
      solve_span.arg("dedup", static_cast<int>(indices.size()));
    }

    const circuit::Circuit canon_circ =
        apply_circuit_canon(*req.circuit, item.canon.circuit);
    const device::Device canon_dev =
        apply_device_canon(*req.device, item.canon.device);
    const layout::Problem canonical{&canon_circ, &canon_dev,
                                    req.swap_duration};

    exchange_.begin_problem(item.instance_key +
                            (transition_based(req.engine) ? "|tb" : "|tr"));
    layout::OptimizerOptions options = req.options;
    options.exchange = &exchange_;

    subarch::SubarchOptions subarch_options = options_.subarch;
    subarch_options.library = &subarch_library_;

    CacheEntry entry;
    entry.result =
        run_engine(req.engine, canonical, req.config, options, subarch_options);
    maybe_certify(req, canonical, entry);

    if (options_.use_cache && entry.result.solved &&
        !entry.result.hit_budget) {
      cache_.insert(key, entry);
    }

    for (const std::size_t i : indices) {
      const Request& r = requests[i];
      const layout::Problem original{r.circuit, r.device, r.swap_duration};
      responses[i].result =
          untransfer_result(entry.result, items[i].canon, original);
      responses[i].cache_hit = i != leader;  // cross-request dedup hits
      fill_certs(entry, responses[i]);
      observe_request();
    }
  }

  if (span.live()) {
    span.arg("hits", static_cast<std::int64_t>(cache_.stats().hits));
    span.arg("solves", static_cast<std::int64_t>(residual.size()));
  }
  return responses;
}

}  // namespace olsq2::serve
