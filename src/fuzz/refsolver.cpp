#include "fuzz/refsolver.h"

#include <optional>

namespace olsq2::fuzz {

namespace {

using sat::Clause;
using sat::LBool;
using sat::Lit;

struct Dpll {
  const std::vector<Clause>& clauses;
  std::vector<LBool> assign;

  LBool value(Lit l) const { return sat::lit_value(assign[l.var()], l.sign()); }

  // Propagate units to fixpoint. Returns false on conflict.
  bool propagate(std::vector<sat::Var>& trail) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Clause& c : clauses) {
        int unassigned = 0;
        Lit unit = sat::kUndefLit;
        bool satisfied = false;
        for (const Lit l : c) {
          const LBool v = value(l);
          if (v == LBool::kTrue) {
            satisfied = true;
            break;
          }
          if (v == LBool::kUndef) {
            unassigned++;
            unit = l;
          }
        }
        if (satisfied) continue;
        if (unassigned == 0) return false;  // conflict
        if (unassigned == 1) {
          assign[unit.var()] = unit.sign() ? LBool::kFalse : LBool::kTrue;
          trail.push_back(unit.var());
          changed = true;
        }
      }
    }
    return true;
  }

  bool solve() {
    std::vector<sat::Var> trail;
    if (!propagate(trail)) {
      for (const sat::Var v : trail) assign[v] = LBool::kUndef;
      return false;
    }
    sat::Var branch = -1;
    for (sat::Var v = 0; v < static_cast<sat::Var>(assign.size()); ++v) {
      if (assign[v] == LBool::kUndef) {
        branch = v;
        break;
      }
    }
    if (branch < 0) return true;  // complete assignment, no conflict
    for (const LBool phase : {LBool::kTrue, LBool::kFalse}) {
      assign[branch] = phase;
      if (solve()) return true;
      assign[branch] = LBool::kUndef;
    }
    for (const sat::Var v : trail) assign[v] = LBool::kUndef;
    return false;
  }
};

}  // namespace

sat::LBool dpll_solve(int num_vars, const std::vector<Clause>& clauses,
                      std::vector<bool>* model) {
  Dpll dpll{clauses, std::vector<LBool>(num_vars, LBool::kUndef)};
  const bool sat = dpll.solve();
  if (sat && model != nullptr) {
    model->assign(num_vars, false);
    for (int v = 0; v < num_vars; ++v) {
      (*model)[v] = dpll.assign[v] == LBool::kTrue;
    }
  }
  return sat ? LBool::kTrue : LBool::kFalse;
}

bool model_satisfies(const std::vector<Clause>& clauses,
                     const std::vector<bool>& model) {
  for (const Clause& c : clauses) {
    bool satisfied = false;
    for (const Lit l : c) {
      const bool v = l.var() < static_cast<sat::Var>(model.size()) &&
                     model[l.var()];
      if (v != l.sign()) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

}  // namespace olsq2::fuzz
