#include "qasm/writer.h"

#include <sstream>

namespace olsq2::qasm {

std::string write(const circuit::Circuit& c) {
  std::ostringstream out;
  out << "OPENQASM 2.0;\n"
      << "include \"qelib1.inc\";\n"
      // Structured header comment: parse() recovers the circuit name from
      // this line, making write -> parse an exact round trip (the gate list
      // and qubit count already survive via the body and qreg).
      << "// name: " << c.name() << "\n"
      << "// " << c.label() << "\n"
      << "qreg q[" << c.num_qubits() << "];\n";
  for (const circuit::Gate& g : c.gates()) {
    out << g.name;
    if (!g.params.empty()) out << "(" << g.params << ")";
    out << " q[" << g.q0 << "]";
    if (g.is_two_qubit()) out << ", q[" << g.q1 << "]";
    out << ";\n";
  }
  return out.str();
}

}  // namespace olsq2::qasm
