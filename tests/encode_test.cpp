// Tests for the CNF encoding toolkit: Tseitin gates, bit-vectors, one-hot
// domains, cardinality encodings, and the totalizer.
#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "encode/bitvec.h"
#include "encode/cardinality.h"
#include "encode/cnf.h"
#include "encode/onehot.h"
#include "encode/totalizer.h"

namespace olsq2::encode {
namespace {

using sat::LBool;
using sat::Solver;

TEST(CnfBuilder, TrueLitIsTrue) {
  Solver s;
  CnfBuilder b(s);
  const Lit t = b.true_lit();
  ASSERT_EQ(s.solve(), LBool::kTrue);
  EXPECT_TRUE(s.model_bool(t));
  EXPECT_FALSE(s.model_bool(b.false_lit()));
}

TEST(CnfBuilder, AndGateTruthTable) {
  for (int av = 0; av <= 1; ++av) {
    for (int bv = 0; bv <= 1; ++bv) {
      Solver s;
      CnfBuilder b(s);
      const Lit a = b.new_lit();
      const Lit c = b.new_lit();
      const Lit y = b.mk_and(a, c);
      b.add({av ? a : ~a});
      b.add({bv ? c : ~c});
      ASSERT_EQ(s.solve(), LBool::kTrue);
      EXPECT_EQ(s.model_bool(y), (av && bv));
    }
  }
}

TEST(CnfBuilder, XorGateTruthTable) {
  for (int av = 0; av <= 1; ++av) {
    for (int bv = 0; bv <= 1; ++bv) {
      Solver s;
      CnfBuilder b(s);
      const Lit a = b.new_lit();
      const Lit c = b.new_lit();
      const Lit y = b.mk_xor(a, c);
      b.add({av ? a : ~a});
      b.add({bv ? c : ~c});
      ASSERT_EQ(s.solve(), LBool::kTrue);
      EXPECT_EQ(s.model_bool(y), (av != bv));
    }
  }
}

TEST(CnfBuilder, IteGateTruthTable) {
  for (int cv = 0; cv <= 1; ++cv) {
    for (int tv = 0; tv <= 1; ++tv) {
      for (int ev = 0; ev <= 1; ++ev) {
        Solver s;
        CnfBuilder b(s);
        const Lit c = b.new_lit();
        const Lit t = b.new_lit();
        const Lit e = b.new_lit();
        const Lit y = b.mk_ite(c, t, e);
        b.add({cv ? c : ~c});
        b.add({tv ? t : ~t});
        b.add({ev ? e : ~e});
        ASSERT_EQ(s.solve(), LBool::kTrue);
        EXPECT_EQ(s.model_bool(y), cv ? (tv != 0) : (ev != 0));
      }
    }
  }
}

TEST(CnfBuilder, WideOrAndGates) {
  Solver s;
  CnfBuilder b(s);
  std::vector<Lit> xs;
  for (int i = 0; i < 6; ++i) xs.push_back(b.new_lit());
  const Lit any = b.mk_or(xs);
  const Lit all = b.mk_and(xs);
  for (int i = 0; i < 6; ++i) b.add({i == 3 ? xs[i] : ~xs[i]});
  ASSERT_EQ(s.solve(), LBool::kTrue);
  EXPECT_TRUE(s.model_bool(any));
  EXPECT_FALSE(s.model_bool(all));
}

// Decode a bit-vector's model value.
std::uint64_t decode(const Solver& s, const BitVec& bv) {
  std::uint64_t v = 0;
  for (int i = 0; i < bv.width(); ++i) {
    if (s.model_bool(bv.bit(i))) v |= (std::uint64_t{1} << i);
  }
  return v;
}

TEST(BitVec, WidthFor) {
  EXPECT_EQ(BitVec::width_for(1), 1);
  EXPECT_EQ(BitVec::width_for(2), 1);
  EXPECT_EQ(BitVec::width_for(3), 2);
  EXPECT_EQ(BitVec::width_for(4), 2);
  EXPECT_EQ(BitVec::width_for(5), 3);
  EXPECT_EQ(BitVec::width_for(127), 7);
  EXPECT_EQ(BitVec::width_for(128), 7);
  EXPECT_EQ(BitVec::width_for(129), 8);
}

TEST(BitVec, EqConstExhaustive) {
  constexpr int kWidth = 3;
  for (std::uint64_t forced = 0; forced < 8; ++forced) {
    Solver s;
    CnfBuilder b(s);
    BitVec bv = BitVec::fresh(b, kWidth);
    b.add({bv.eq_const(b, forced)});
    ASSERT_EQ(s.solve(), LBool::kTrue);
    EXPECT_EQ(decode(s, bv), forced);
    // All other eq literals must be false in the model.
    for (std::uint64_t other = 0; other < 8; ++other) {
      EXPECT_EQ(s.model_bool(bv.eq_const(b, other)), other == forced);
    }
  }
}

TEST(BitVec, EqConstCacheReturnsSameLiteral) {
  Solver s;
  CnfBuilder b(s);
  BitVec bv = BitVec::fresh(b, 4);
  EXPECT_EQ(bv.eq_const(b, 9).code(), bv.eq_const(b, 9).code());
}

// Exhaustive semantics check of ule_const for all widths/values/bounds.
TEST(BitVec, UleConstExhaustive) {
  for (int width = 1; width <= 4; ++width) {
    const std::uint64_t range = std::uint64_t{1} << width;
    for (std::uint64_t value = 0; value < range; ++value) {
      for (std::uint64_t bound = 0; bound <= range; ++bound) {
        Solver s;
        CnfBuilder b(s);
        BitVec bv = BitVec::fresh(b, width);
        b.add({bv.eq_const(b, value)});
        const Lit le = bv.ule_const(b, bound);
        ASSERT_EQ(s.solve(), LBool::kTrue);
        EXPECT_EQ(s.model_bool(le), value <= bound)
            << "w=" << width << " v=" << value << " bound=" << bound;
      }
    }
  }
}

TEST(BitVec, AssertLtRestrictsDomain) {
  for (std::uint64_t n = 1; n <= 8; ++n) {
    Solver s;
    CnfBuilder b(s);
    BitVec bv = BitVec::fresh(b, 3);
    bv.assert_lt(b, n);
    // Count models by blocking each found value.
    std::uint64_t count = 0;
    while (s.solve() == LBool::kTrue) {
      const std::uint64_t v = decode(s, bv);
      EXPECT_LT(v, n);
      count++;
      std::vector<Lit> block;
      for (int i = 0; i < 3; ++i) {
        block.push_back(s.model_bool(bv.bit(i)) ? ~bv.bit(i) : bv.bit(i));
      }
      s.add_clause(block);
      ASSERT_LE(count, 8u);
    }
    EXPECT_EQ(count, n);
  }
}

TEST(BitVec, EqBitVecExhaustive) {
  constexpr int kWidth = 3;
  for (std::uint64_t x = 0; x < 8; ++x) {
    for (std::uint64_t y = 0; y < 8; ++y) {
      Solver s;
      CnfBuilder b(s);
      BitVec bx = BitVec::fresh(b, kWidth);
      BitVec by = BitVec::fresh(b, kWidth);
      b.add({bx.eq_const(b, x)});
      b.add({by.eq_const(b, y)});
      const Lit eq = bx.eq(b, by);
      ASSERT_EQ(s.solve(), LBool::kTrue);
      EXPECT_EQ(s.model_bool(eq), x == y);
    }
  }
}

TEST(BitVec, AdderExhaustive) {
  constexpr int kWidth = 3;
  for (std::uint64_t x = 0; x < 8; ++x) {
    for (std::uint64_t y = 0; y < 8; ++y) {
      Solver s;
      CnfBuilder b(s);
      BitVec bx = BitVec::fresh(b, kWidth);
      BitVec by = BitVec::fresh(b, kWidth);
      b.add({bx.eq_const(b, x)});
      b.add({by.eq_const(b, y)});
      BitVec sum = bx.add(b, by);
      ASSERT_EQ(s.solve(), LBool::kTrue);
      EXPECT_EQ(decode(s, sum), x + y);
    }
  }
}

TEST(OneHot, ExactlyOneValueHolds) {
  Solver s;
  CnfBuilder b(s);
  OneHot v = OneHot::fresh(b, 5);
  ASSERT_EQ(s.solve(), LBool::kTrue);
  int trues = 0;
  for (int i = 0; i < 5; ++i) {
    if (s.model_bool(v.eq_const(i))) trues++;
  }
  EXPECT_EQ(trues, 1);
}

TEST(OneHot, LeConstSemantics) {
  for (int value = 0; value < 5; ++value) {
    for (int bound = 0; bound < 5; ++bound) {
      Solver s;
      CnfBuilder b(s);
      OneHot v = OneHot::fresh(b, 5);
      b.add({v.eq_const(value)});
      const Lit le = v.le_const(b, bound);
      ASSERT_EQ(s.solve(), LBool::kTrue);
      EXPECT_EQ(s.model_bool(le), value <= bound);
    }
  }
}

TEST(OneHot, EqOtherSemantics) {
  for (int x = 0; x < 4; ++x) {
    for (int y = 0; y < 4; ++y) {
      Solver s;
      CnfBuilder b(s);
      OneHot vx = OneHot::fresh(b, 4);
      OneHot vy = OneHot::fresh(b, 4);
      b.add({vx.eq_const(x)});
      b.add({vy.eq_const(y)});
      const Lit eq = vx.eq(b, vy);
      ASSERT_EQ(s.solve(), LBool::kTrue);
      EXPECT_EQ(s.model_bool(eq), x == y);
    }
  }
}

// ---- Cardinality property tests --------------------------------------------

enum class CardKind { kSeqCounter, kAdder, kTotalizerAssert };

void encode_at_most_k(CnfBuilder& b, std::span<const Lit> lits, int k,
                      CardKind kind) {
  switch (kind) {
    case CardKind::kSeqCounter:
      at_most_k_seqcounter(b, lits, k);
      break;
    case CardKind::kAdder:
      at_most_k_adder(b, lits, k);
      break;
    case CardKind::kTotalizerAssert: {
      Totalizer tot(b, lits);
      tot.assert_leq(b, k);
      break;
    }
  }
}

struct CardCase {
  CardKind kind;
  int n;
  int k;
};

class CardinalityTest : public ::testing::TestWithParam<CardCase> {};

// For every assignment pattern, forcing exactly m inputs true must be SAT
// iff m <= k.
TEST_P(CardinalityTest, ForcedCountsMatchBound) {
  const auto [kind, n, k] = GetParam();
  for (int m = 0; m <= n; ++m) {
    Solver s;
    CnfBuilder b(s);
    std::vector<Lit> xs;
    for (int i = 0; i < n; ++i) xs.push_back(b.new_lit());
    encode_at_most_k(b, xs, k, kind);
    // Force the first m true and the rest false.
    for (int i = 0; i < n; ++i) b.add({i < m ? xs[i] : ~xs[i]});
    const bool expect_sat = (m <= k);
    EXPECT_EQ(s.solve() == LBool::kTrue, expect_sat)
        << "n=" << n << " k=" << k << " m=" << m;
  }
}

// With an at-least-k side constraint, model counts must stay in range.
TEST_P(CardinalityTest, ModelsNeverExceedBound) {
  const auto [kind, n, k] = GetParam();
  Solver s;
  CnfBuilder b(s);
  std::vector<Lit> xs;
  for (int i = 0; i < n; ++i) xs.push_back(b.new_lit());
  encode_at_most_k(b, xs, k, kind);
  int models = 0;
  while (s.solve() == LBool::kTrue && models < 200) {
    int trues = 0;
    std::vector<Lit> block;
    for (const Lit x : xs) {
      const bool v = s.model_bool(x);
      trues += v ? 1 : 0;
      block.push_back(v ? ~x : x);
    }
    EXPECT_LE(trues, k);
    s.add_clause(block);
    models++;
  }
  // Number of assignments with <= k of n bits set.
  auto binom = [](int nn, int kk) {
    double r = 1;
    for (int i = 0; i < kk; ++i) r = r * (nn - i) / (i + 1);
    return static_cast<int>(r + 0.5);
  };
  int expected = 0;
  for (int m = 0; m <= k; ++m) expected += binom(n, m);
  if (expected <= 200) {
    EXPECT_EQ(models, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CardinalityTest,
    ::testing::Values(CardCase{CardKind::kSeqCounter, 5, 2},
                      CardCase{CardKind::kSeqCounter, 6, 0},
                      CardCase{CardKind::kSeqCounter, 6, 3},
                      CardCase{CardKind::kSeqCounter, 7, 6},
                      CardCase{CardKind::kAdder, 5, 2},
                      CardCase{CardKind::kAdder, 6, 0},
                      CardCase{CardKind::kAdder, 6, 3},
                      CardCase{CardKind::kAdder, 7, 6},
                      CardCase{CardKind::kTotalizerAssert, 5, 2},
                      CardCase{CardKind::kTotalizerAssert, 6, 0},
                      CardCase{CardKind::kTotalizerAssert, 6, 3},
                      CardCase{CardKind::kTotalizerAssert, 7, 6}));

TEST(AtMostOne, PairwiseAndCommanderAgree) {
  for (int n : {2, 3, 5, 9, 14}) {
    for (int variant = 0; variant < 2; ++variant) {
      Solver s;
      CnfBuilder b(s);
      std::vector<Lit> xs;
      for (int i = 0; i < n; ++i) xs.push_back(b.new_lit());
      if (variant == 0) {
        at_most_one_pairwise(b, xs);
      } else {
        at_most_one_commander(b, xs, 3);
      }
      // Forcing two distinct literals true must be UNSAT.
      const std::vector<Lit> two = {xs[0], xs[n - 1]};
      EXPECT_EQ(s.solve(two), LBool::kFalse) << "n=" << n << " v=" << variant;
      const std::vector<Lit> one = {xs[n / 2]};
      EXPECT_EQ(s.solve(one), LBool::kTrue);
    }
  }
}

TEST(AtLeastK, ForcedCountsMatchBound) {
  const int n = 6;
  for (int k = 0; k <= n + 1; ++k) {
    for (int m = 0; m <= n; ++m) {
      Solver s;
      CnfBuilder b(s);
      std::vector<Lit> xs;
      for (int i = 0; i < n; ++i) xs.push_back(b.new_lit());
      at_least_k_seqcounter(b, xs, k);
      for (int i = 0; i < n; ++i) s.add_clause({i < m ? xs[i] : ~xs[i]});
      EXPECT_EQ(s.solve() == LBool::kTrue, m >= k) << "k=" << k << " m=" << m;
    }
  }
}

TEST(Totalizer, OutputsAreSortedUnaryCount) {
  const int n = 6;
  for (int m = 0; m <= n; ++m) {
    Solver s;
    CnfBuilder b(s);
    std::vector<Lit> xs;
    for (int i = 0; i < n; ++i) xs.push_back(b.new_lit());
    Totalizer tot(b, xs);
    for (int i = 0; i < n; ++i) b.add({i < m ? xs[i] : ~xs[i]});
    ASSERT_EQ(s.solve(), LBool::kTrue);
    for (int j = 0; j < n; ++j) {
      EXPECT_EQ(s.model_bool(tot.outputs()[j]), j < m)
          << "m=" << m << " j=" << j;
    }
  }
}

TEST(Totalizer, AssumptionBoundDescent) {
  // The incremental-descent pattern used by the SWAP optimizer: one solver,
  // bound tightened purely through assumptions.
  const int n = 8;
  Solver s;
  CnfBuilder b(s);
  std::vector<Lit> xs;
  for (int i = 0; i < n; ++i) xs.push_back(b.new_lit());
  // Require at least 3 true.
  at_least_k_seqcounter(b, xs, 3);
  Totalizer tot(b, xs);
  int k = n;
  int lowest_sat = -1;
  while (k >= 0) {
    const std::vector<Lit> assume = {tot.bound_leq(b, k)};
    if (s.solve(assume) == LBool::kTrue) {
      lowest_sat = k;
      k--;
    } else {
      break;
    }
  }
  EXPECT_EQ(lowest_sat, 3);
  // Solver still usable without assumptions.
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

}  // namespace
}  // namespace olsq2::encode
