// Dense state-vector simulator for small circuits.
//
// Closes the semantic loop on layout synthesis: the verifier checks the
// paper's scheduling constraints, and this simulator checks that the routed
// physical circuit actually *computes the same unitary* as the input
// program under the reported initial/final mappings. Practical up to ~16
// qubits; the equivalence tests run on 5-9 qubit devices.
//
// Supported gates: x, y, z, h, s, sdg, t, tdg, p/rz/u1(theta), rx(theta),
// ry(theta), cx, cz, swap, zz/rzz(theta). Parameter expressions support
// decimals and the forms pi, -pi, pi/k, -pi/k, k*pi (enough for every
// generator and corpus file in this repository).
#pragma once

#include <complex>
#include <string>
#include <vector>

#include "circuit/circuit.h"

namespace olsq2::sim {

using Amplitude = std::complex<double>;

/// Parse a gate-parameter expression (e.g. "pi/4", "-pi/2", "0.7", "2*pi").
/// Throws std::runtime_error on unsupported syntax.
double parse_angle(const std::string& text);

class StateVector {
 public:
  /// |0...0> over `num_qubits` qubits (qubit 0 is the least-significant bit
  /// of the basis index).
  explicit StateVector(int num_qubits);

  int num_qubits() const { return num_qubits_; }
  const std::vector<Amplitude>& amplitudes() const { return amps_; }

  /// Set an arbitrary normalized state (size must be 2^num_qubits).
  void set_state(std::vector<Amplitude> amps);

  /// Apply a named gate (see the header comment for the supported set).
  void apply(const circuit::Gate& gate);
  void apply_circuit(const circuit::Circuit& c);

  /// |<other|this>| - 1.0 means equal up to global phase.
  double overlap(const StateVector& other) const;

 private:
  void apply_1q(int q, const Amplitude m[2][2]);
  void apply_cx(int control, int target);
  void apply_cz(int q0, int q1);
  void apply_swap(int q0, int q1);
  void apply_zz(int q0, int q1, double theta);

  int num_qubits_;
  std::vector<Amplitude> amps_;
};

/// Functional-equivalence check for a synthesis result: simulate the input
/// program and the routed physical circuit from `trials` random product
/// states and compare (program qubits embedded via the initial mapping,
/// extracted via the final mapping; ancilla physical qubits must return to
/// |0>). Device sizes above `max_device_qubits` are rejected (memory).
struct EquivalenceOptions {
  int trials = 3;
  std::uint64_t seed = 1;
  int max_device_qubits = 16;
  double tolerance = 1e-9;
};

struct EquivalenceReport {
  bool equivalent = false;
  double worst_overlap = 0.0;  // min over trials of |<expected|actual>|
  std::string error;           // non-empty when a check could not run
};

/// `routed` must be a physical-qubit circuit (e.g. from
/// layout::to_physical_circuit or a heuristic router), with "swap" gates
/// explicit. `initial_mapping[q]` / `final_mapping[q]` give the physical
/// position of program qubit q before/after execution.
EquivalenceReport check_routed_equivalence(
    const circuit::Circuit& program, const circuit::Circuit& routed,
    const std::vector<int>& initial_mapping,
    const std::vector<int>& final_mapping,
    const EquivalenceOptions& options = {});

}  // namespace olsq2::sim
