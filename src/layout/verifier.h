// Independent validity checker for layout synthesis results.
//
// Re-checks the five constraints of paper §II-A directly against the
// decoded result - no SAT machinery involved - so an encoding bug in any
// engine cannot hide. Used by the test suite on every engine's output and
// available to library users as a safety net.
#pragma once

#include <string>
#include <vector>

#include "layout/types.h"

namespace olsq2::layout {

struct Verdict {
  bool ok = true;
  std::vector<std::string> errors;

  void fail(std::string message) {
    ok = false;
    errors.push_back(std::move(message));
  }
};

/// Check a time-resolved result (OLSQ2 / OLSQ baseline output):
///  1. mapping injectivity at every time step,
///  2. gate dependencies execute in order (strictly),
///  3. two-qubit gates touch adjacent physical qubits at their time step,
///  4. the mapping evolves only through the reported SWAPs,
///  5. SWAPs do not overlap gates or other SWAPs on shared qubits.
Verdict verify(const Problem& problem, const Result& result);

/// Check a transition-based result (TB-OLSQ2 / TB-OLSQ output): injectivity
/// per block, dependency order (non-strict), per-block adjacency, disjoint
/// SWAP layers, and mapping evolution across transitions.
Verdict verify_transition_based(const Problem& problem, const Result& result);

}  // namespace olsq2::layout
