#include "fuzz/generator.h"

#include <algorithm>
#include <string>
#include <vector>

#include "bengen/graphgen.h"
#include "bengen/workloads.h"
#include "device/presets.h"

namespace olsq2::fuzz {

namespace {

struct GateTemplate {
  const char* name;
  bool two_qubit;
  const char* params;  // "" = none
};

// Every entry round-trips exactly through qasm::write / qasm::parse (plain
// identifier names, parenthesized parameter text with no whitespace).
constexpr GateTemplate kPalette[] = {
    {"h", false, ""},        {"x", false, ""},       {"t", false, ""},
    {"tdg", false, ""},      {"s", false, ""},       {"sdg", false, ""},
    {"rz", false, "pi/4"},   {"rz", false, "0.35"},  {"cx", true, ""},
    {"cz", true, ""},        {"rzz", true, "0.7"},
};

}  // namespace

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) {
  // splitmix64 over the (base, index) pair: independent per-iteration seeds.
  std::uint64_t x = base + 0x9e3779b97f4a7c15ULL * (index + 1);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

circuit::Circuit random_circuit(int num_qubits, int num_gates,
                                bengen::Rng& rng) {
  circuit::Circuit c(num_qubits, "fuzz");
  std::vector<const GateTemplate*> singles;
  std::vector<const GateTemplate*> doubles;
  for (const GateTemplate& g : kPalette) {
    (g.two_qubit ? doubles : singles).push_back(&g);
  }
  for (int i = 0; i < num_gates; ++i) {
    const bool two = num_qubits >= 2 && rng.chance(0.65);
    if (two) {
      const GateTemplate& g = *doubles[rng.below_int(static_cast<int>(doubles.size()))];
      const int q0 = rng.below_int(num_qubits);
      int q1 = rng.below_int(num_qubits - 1);
      if (q1 >= q0) q1++;
      c.add_gate(g.name, q0, q1, g.params);
    } else {
      const GateTemplate& g = *singles[rng.below_int(static_cast<int>(singles.size()))];
      c.add_gate(g.name, rng.below_int(num_qubits), g.params);
    }
  }
  return c;
}

device::Device random_device(int num_qubits, int extra_edges,
                             bengen::Rng& rng) {
  const auto raw = bengen::random_connected_graph(num_qubits, extra_edges, rng);
  std::vector<device::Edge> edges;
  edges.reserve(raw.size());
  for (const auto& [a, b] : raw) edges.push_back({a, b});
  return device::Device("fuzzdev", num_qubits, std::move(edges));
}

Instance random_instance(std::uint64_t seed, const GeneratorOptions& options) {
  bengen::Rng rng(seed);
  const int qubits =
      options.min_qubits +
      rng.below_int(options.max_qubits - options.min_qubits + 1);
  const int spare = rng.below_int(options.max_spare_qubits + 1);
  const int gates =
      options.min_gates + rng.below_int(options.max_gates - options.min_gates + 1);
  const int extra_edges = rng.below_int(options.max_extra_edges + 1);
  const int swap_duration =
      options.swap_duration_one_only || rng.chance(0.7) ? 1 : 3;

  if (!options.named_device.empty()) {
    // Large named device + region-local workload: the interaction graph is
    // connected by construction and 1-2 cross-region gates force SWAPs.
    device::Device dev = device::preset_by_name(options.named_device);
    const int cross = 1 + rng.below_int(2);
    circuit::Circuit circ = bengen::region_workload(
        dev, qubits, std::max(gates, qubits), cross, derive_seed(seed, 1));
    return Instance{std::move(circ), std::move(dev), swap_duration, seed};
  }

  device::Device dev = random_device(qubits + spare, extra_edges, rng);
  circuit::Circuit circ = random_circuit(qubits, gates, rng);
  return Instance{std::move(circ), std::move(dev), swap_duration, seed};
}

sat::DimacsProblem random_cnf(std::uint64_t seed,
                              const RandomCnfOptions& options) {
  bengen::Rng rng(seed);
  sat::DimacsProblem problem;
  problem.num_vars =
      options.min_vars + rng.below_int(options.max_vars - options.min_vars + 1);
  const int num_clauses = std::max(
      1, static_cast<int>(options.clause_ratio * problem.num_vars + 0.5));
  for (int i = 0; i < num_clauses; ++i) {
    const int len =
        options.min_clause_len +
        rng.below_int(options.max_clause_len - options.min_clause_len + 1);
    sat::Clause clause;
    for (int k = 0; k < len; ++k) {
      const sat::Var v = rng.below_int(problem.num_vars);
      clause.push_back(sat::Lit(v, rng.chance(0.5)));
    }
    // Duplicate literals and tautologies are legal inputs by design: the
    // solver's normalization path is part of what the fuzz target covers.
    problem.clauses.push_back(std::move(clause));
  }
  return problem;
}

}  // namespace olsq2::fuzz
