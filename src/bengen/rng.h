// Deterministic xoshiro256** RNG so every generated benchmark is
// reproducible from its seed (stand-in for the paper's networkx v2.4 +
// fixed-seed benchmark generation).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace olsq2::bengen {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 seeding.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) { return next() % n; }

  int below_int(int n) { return static_cast<int>(below(static_cast<std::uint64_t>(n))); }

  /// Uniform double in [0, 1).
  double unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  bool chance(double p) { return unit() < p; }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[below(i)]);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace olsq2::bengen
