# Empty dependencies file for satmap_test.
# This may be replaced when dependencies are built.
