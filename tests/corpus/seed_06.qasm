OPENQASM 2.0;
include "qelib1.inc";
// name: fuzz
// fuzz(2/10)
qreg q[2];
rzz(0.7) q[0], q[1];
cx q[0], q[1];
sdg q[1];
rz(0.35) q[0];
t q[1];
rz(pi/4) q[0];
rzz(0.7) q[0], q[1];
cz q[0], q[1];
cz q[0], q[1];
cx q[1], q[0];
