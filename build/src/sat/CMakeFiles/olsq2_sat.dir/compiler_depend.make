# Empty compiler generated dependencies file for olsq2_sat.
# This may be replaced when dependencies are built.
