OPENQASM 2.0;
include "qelib1.inc";
// name: fuzz
// fuzz(5/10)
qreg q[5];
cz q[2], q[4];
cz q[3], q[2];
cz q[0], q[1];
sdg q[1];
cx q[1], q[2];
cx q[1], q[0];
h q[0];
cx q[2], q[3];
cx q[0], q[4];
rzz(0.7) q[4], q[0];
