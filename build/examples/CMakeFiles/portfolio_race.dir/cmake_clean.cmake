file(REMOVE_RECURSE
  "CMakeFiles/portfolio_race.dir/portfolio_race.cpp.o"
  "CMakeFiles/portfolio_race.dir/portfolio_race.cpp.o.d"
  "portfolio_race"
  "portfolio_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portfolio_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
