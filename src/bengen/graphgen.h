// Random regular graph generation (configuration model), replacing the
// paper's use of networkx random_regular_graph for QAOA benchmarks.
#pragma once

#include <utility>
#include <vector>

#include "bengen/rng.h"

namespace olsq2::bengen {

/// Simple random d-regular graph on n vertices via the configuration model
/// with rejection (no self-loops, no parallel edges). Requires n*d even and
/// d < n.
std::vector<std::pair<int, int>> random_regular_graph(int n, int d, Rng& rng);

/// Random connected graph on n vertices: a uniformly-labeled random spanning
/// tree (random attachment over a shuffled vertex order) plus up to
/// `extra_edges` additional distinct random edges. The fuzzing harness uses
/// this to sample coupling graphs no device preset covers; connectivity is
/// guaranteed by construction.
std::vector<std::pair<int, int>> random_connected_graph(int n, int extra_edges,
                                                        Rng& rng);

}  // namespace olsq2::bengen
