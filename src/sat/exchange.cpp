#include "sat/exchange.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics.h"

namespace olsq2::sat {

ClauseExchange::GroupMetrics& ClauseExchange::metrics_for(int group) {
  if (group_metrics_.size() < groups_.size()) {
    group_metrics_.resize(groups_.size());
  }
  GroupMetrics& gm = group_metrics_[static_cast<std::size_t>(group)];
  if (gm.published == nullptr) {
    namespace m = obs::metrics;
    m::Registry& reg = m::Registry::instance();
    // Group keys embed encoding fingerprints of unbounded cardinality;
    // hash them down to a stable 8-char label value.
    const m::Labels labels = {{"group", m::short_hash(groups_[group])}};
    gm.published = &reg.counter("sat_exchange_published_total",
                                "Clauses accepted into the exchange buffer",
                                labels);
    gm.filtered = &reg.counter("sat_exchange_filtered_total",
                               "Clauses rejected by the size/LBD filter",
                               labels);
    gm.delivered = &reg.counter("sat_exchange_delivered_total",
                                "Clause deliveries, summed over importers",
                                labels);
  }
  return gm;
}

int ClauseExchange::add_solver(const std::string& group) {
  sync::MutexLock lock(mutex_);
  SolverSlot slot;
  // Namespace by problem: identical encoding fingerprints for different
  // problems (e.g. relabeled instances) must land in different groups.
  const std::string scoped = problem_key_ + '\x1f' + group;
  auto it = std::find(groups_.begin(), groups_.end(), scoped);
  if (it == groups_.end()) {
    groups_.push_back(scoped);
    slot.group = static_cast<int>(groups_.size()) - 1;
  } else {
    slot.group = static_cast<int>(it - groups_.begin());
  }
  // A late joiner starts at the current frontier: clauses published before
  // it existed may predate its formula, so it never sees them.
  slot.cursor = next_seq_.load(std::memory_order_relaxed);
  solvers_.push_back(slot);
  return static_cast<int>(solvers_.size()) - 1;
}

void ClauseExchange::begin_problem(const std::string& key) {
  sync::MutexLock lock(mutex_);
  if (problem_key_ == key) return;
  problem_key_ = key;
  // Cut off the clause backlog: groups are namespaced so stale clauses
  // could never be *delivered* to the new problem's solvers, but dropping
  // them keeps the ring from carrying dead weight between batch items.
  buffer_.clear();
  base_seq_ = next_seq_.load(std::memory_order_relaxed);
  // Bound facts describe the previous problem; a stale depth-UNSAT fact
  // would silently prune the new problem's search to a wrong optimum.
  depth_unsat_max_.store(-1, std::memory_order_release);
  depth_sat_min_.store(std::numeric_limits<int>::max(),
                       std::memory_order_release);
  sync::MutexLock swap_lock(swap_mutex_);
  swap_unsat_.clear();
}

bool ClauseExchange::publish(int solver_id, std::span<const Lit> lits,
                             unsigned lbd) {
  if (lits.empty()) return false;
  const bool always = lits.size() <= 2;  // units and binaries
  if (!always && (lits.size() > options_.max_size || lbd > options_.max_lbd)) {
    filtered_.fetch_add(1, std::memory_order_relaxed);
    if (obs::metrics::enabled()) {
      // Off the lock-free fast path only when metrics are on: the group
      // label lives behind the hub mutex.
      sync::MutexLock lock(mutex_);
      if (solver_id >= 0 && solver_id < static_cast<int>(solvers_.size())) {
        metrics_for(solvers_[solver_id].group).filtered->inc();
      }
    }
    return false;
  }
  sync::MutexLock lock(mutex_);
  assert(solver_id >= 0 &&
         solver_id < static_cast<int>(solvers_.size()));
  SharedClause sc;
  sc.lits.assign(lits.begin(), lits.end());
  sc.lbd = lbd;
  sc.source = solver_id;
  sc.group = solvers_[solver_id].group;
  buffer_.push_back(std::move(sc));
  next_seq_.fetch_add(1, std::memory_order_release);
  while (buffer_.size() > options_.capacity) {
    buffer_.pop_front();
    base_seq_++;
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  published_.fetch_add(1, std::memory_order_relaxed);
  if (obs::metrics::enabled()) {
    metrics_for(solvers_[solver_id].group).published->inc();
  }
  return true;
}

std::size_t ClauseExchange::publish_batch(int solver_id,
                                          std::span<const ExportItem> items) {
  if (items.empty()) return 0;
  sync::MutexLock lock(mutex_);
  assert(solver_id >= 0 && solver_id < static_cast<int>(solvers_.size()));
  const int group = solvers_[solver_id].group;
  std::size_t accepted = 0;
  for (const ExportItem& item : items) {
    if (item.lits.empty()) continue;
    const bool always = item.lits.size() <= 2;  // units and binaries
    if (!always && (item.lits.size() > options_.max_size ||
                    item.lbd > options_.max_lbd)) {
      filtered_.fetch_add(1, std::memory_order_relaxed);
      if (obs::metrics::enabled()) metrics_for(group).filtered->inc();
      continue;
    }
    SharedClause sc;
    sc.lits.assign(item.lits.begin(), item.lits.end());
    sc.lbd = item.lbd;
    sc.source = solver_id;
    sc.group = group;
    buffer_.push_back(std::move(sc));
    next_seq_.fetch_add(1, std::memory_order_release);
    accepted++;
  }
  while (buffer_.size() > options_.capacity) {
    buffer_.pop_front();
    base_seq_++;
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  published_.fetch_add(accepted, std::memory_order_relaxed);
  if (accepted > 0 && obs::metrics::enabled()) {
    metrics_for(group).published->inc(accepted);
  }
  return accepted;
}

bool ClauseExchange::has_new(int solver_id) const {
  sync::MutexLock lock(mutex_);
  if (solver_id < 0 || solver_id >= static_cast<int>(solvers_.size())) {
    return false;
  }
  return next_seq_.load(std::memory_order_relaxed) >
         solvers_[solver_id].cursor;
}

std::size_t ClauseExchange::collect(
    int solver_id,
    const std::function<void(std::span<const Lit>, unsigned)>& fn) {
  // Copy phase: everything the hub lock guards happens here; the callbacks
  // run after the lock is released. Importers attach clauses, propagate
  // units, and (under OLSQ2_CHECK_INVARIANTS) walk the whole solver -
  // none of which may nest inside hub state (DESIGN.md §11).
  std::vector<std::pair<std::vector<Lit>, unsigned>> pending;
  {
    sync::MutexLock lock(mutex_);
    assert(solver_id >= 0 && solver_id < static_cast<int>(solvers_.size()));
    SolverSlot& slot = solvers_[solver_id];
    std::uint64_t cursor = slot.cursor;
    const std::uint64_t end = next_seq_.load(std::memory_order_relaxed);
    if (cursor < base_seq_) cursor = base_seq_;  // missed evicted clauses
    for (; cursor < end; ++cursor) {
      const SharedClause& sc = buffer_[cursor - base_seq_];
      if (sc.source == solver_id || sc.group != slot.group) continue;
      pending.emplace_back(sc.lits, sc.lbd);
    }
    slot.cursor = cursor;
    delivered_.fetch_add(pending.size(), std::memory_order_relaxed);
    if (!pending.empty() && obs::metrics::enabled()) {
      metrics_for(slot.group).delivered->inc(pending.size());
    }
  }
  for (const auto& [lits, lbd] : pending) {
    fn(std::span<const Lit>(lits), lbd);
  }
  return pending.size();
}

ClauseExchange::Traffic ClauseExchange::traffic() const {
  Traffic t;
  t.published = published_.load(std::memory_order_relaxed);
  t.filtered = filtered_.load(std::memory_order_relaxed);
  t.delivered = delivered_.load(std::memory_order_relaxed);
  t.dropped = dropped_.load(std::memory_order_relaxed);
  t.bound_facts = bound_facts_.load(std::memory_order_relaxed);
  t.bound_pruned = bound_pruned_.load(std::memory_order_relaxed);
  return t;
}

void ClauseExchange::note_depth_unsat(int depth) {
  int cur = depth_unsat_max_.load(std::memory_order_relaxed);
  while (depth > cur) {
    if (depth_unsat_max_.compare_exchange_weak(cur, depth,
                                               std::memory_order_acq_rel)) {
      bound_facts_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

void ClauseExchange::note_depth_sat(int depth) {
  int cur = depth_sat_min_.load(std::memory_order_relaxed);
  while (depth < cur) {
    if (depth_sat_min_.compare_exchange_weak(cur, depth,
                                             std::memory_order_acq_rel)) {
      bound_facts_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

void ClauseExchange::note_swap_unsat(int depth, int swaps) {
  sync::MutexLock lock(swap_mutex_);
  // Keep only non-dominated facts: (d, k) refutes every (d' <= d, k' <= k),
  // so a fact with both coordinates <= another's adds nothing.
  for (const auto& [d, k] : swap_unsat_) {
    if (d >= depth && k >= swaps) return;  // dominated, drop
  }
  std::erase_if(swap_unsat_, [&](const std::pair<int, int>& f) {
    return f.first <= depth && f.second <= swaps;
  });
  swap_unsat_.emplace_back(depth, swaps);
  bound_facts_.fetch_add(1, std::memory_order_relaxed);
}

bool ClauseExchange::swap_known_unsat(int depth, int swaps) const {
  sync::MutexLock lock(swap_mutex_);
  for (const auto& [d, k] : swap_unsat_) {
    if (d >= depth && k >= swaps) return true;
  }
  return false;
}

}  // namespace olsq2::sat
