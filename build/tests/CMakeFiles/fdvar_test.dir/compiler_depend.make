# Empty compiler generated dependencies file for fdvar_test.
# This may be replaced when dependencies are built.
