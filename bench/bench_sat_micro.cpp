// Google-benchmark microbenchmarks for the substrate: CDCL solver on
// classic instance families and CNF sizes of the cardinality encodings.
// These do not map to a paper table; they characterize the engine all the
// table-level benches run on.
#include <benchmark/benchmark.h>

#include <random>

#include "encode/cardinality.h"
#include "encode/cnf.h"
#include "encode/totalizer.h"
#include "sat/solver.h"

namespace {

using namespace olsq2;
using sat::Lit;
using sat::Solver;
using sat::Var;

void add_pigeonhole(Solver& s, int pigeons, int holes) {
  std::vector<std::vector<Var>> p(pigeons, std::vector<Var>(holes));
  for (auto& row : p) {
    for (auto& v : row) v = s.new_var();
  }
  for (int i = 0; i < pigeons; ++i) {
    std::vector<Lit> clause;
    for (int j = 0; j < holes; ++j) clause.push_back(Lit::pos(p[i][j]));
    s.add_clause(clause);
  }
  for (int j = 0; j < holes; ++j) {
    for (int i = 0; i < pigeons; ++i) {
      for (int k = i + 1; k < pigeons; ++k) {
        s.add_clause({Lit::neg(p[i][j]), Lit::neg(p[k][j])});
      }
    }
  }
}

void BM_PigeonholeUnsat(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Solver s;
    add_pigeonhole(s, holes + 1, holes);
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_PigeonholeUnsat)->Arg(5)->Arg(6)->Arg(7)->Arg(8);

void BM_Random3SatNearThreshold(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int m = static_cast<int>(n * 4.2);
  for (auto _ : state) {
    std::mt19937 rng(7);
    Solver s;
    for (int i = 0; i < n; ++i) s.new_var();
    for (int c = 0; c < m; ++c) {
      std::vector<Lit> clause;
      for (int k = 0; k < 3; ++k) {
        clause.emplace_back(static_cast<Var>(rng() % n), (rng() & 1) != 0);
      }
      s.add_clause(clause);
    }
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_Random3SatNearThreshold)->Arg(50)->Arg(100)->Arg(150);

template <typename EncodeFn>
void cardinality_size(benchmark::State& state, EncodeFn&& encode) {
  const int n = static_cast<int>(state.range(0));
  const int k = n / 3;
  std::int64_t clauses = 0;
  for (auto _ : state) {
    Solver s;
    encode::CnfBuilder b(s);
    std::vector<Lit> xs;
    for (int i = 0; i < n; ++i) xs.push_back(b.new_lit());
    encode(b, xs, k);
    clauses = s.num_clauses();
    benchmark::DoNotOptimize(clauses);
  }
  state.counters["clauses"] = static_cast<double>(clauses);
}

void BM_SeqCounterSize(benchmark::State& state) {
  cardinality_size(state, [](encode::CnfBuilder& b, std::vector<Lit>& xs,
                             int k) { encode::at_most_k_seqcounter(b, xs, k); });
}
BENCHMARK(BM_SeqCounterSize)->Arg(30)->Arg(90)->Arg(270);

void BM_TotalizerSize(benchmark::State& state) {
  cardinality_size(state, [](encode::CnfBuilder& b, std::vector<Lit>& xs,
                             int k) {
    encode::Totalizer tot(b, xs);
    tot.assert_leq(b, k);
  });
}
BENCHMARK(BM_TotalizerSize)->Arg(30)->Arg(90)->Arg(270);

void BM_AdderSize(benchmark::State& state) {
  cardinality_size(state, [](encode::CnfBuilder& b, std::vector<Lit>& xs,
                             int k) { encode::at_most_k_adder(b, xs, k); });
}
BENCHMARK(BM_AdderSize)->Arg(30)->Arg(90)->Arg(270);

void BM_IncrementalTotalizerDescent(benchmark::State& state) {
  // The SWAP-descent access pattern: one solver, bound tightened by
  // assumptions only.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Solver s;
    encode::CnfBuilder b(s);
    std::vector<Lit> xs;
    for (int i = 0; i < n; ++i) xs.push_back(b.new_lit());
    encode::at_least_k_seqcounter(b, xs, n / 4);
    encode::Totalizer tot(b, xs);
    int k = n;
    while (k >= 0) {
      const std::vector<Lit> assume = {tot.bound_leq(b, k)};
      if (s.solve(assume) != sat::LBool::kTrue) break;
      k--;
    }
    benchmark::DoNotOptimize(k);
  }
}
BENCHMARK(BM_IncrementalTotalizerDescent)->Arg(24)->Arg(48);

}  // namespace

BENCHMARK_MAIN();
