// Differential tests across the encoding matrix: every configuration of
// formulation x variable encoding x injectivity x cardinality must agree on
// satisfiability verdicts and optimal objective values - they may only
// differ in speed (the whole premise of the paper's §III-C study).
#include <gtest/gtest.h>

#include "bengen/workloads.h"
#include "circuit/dependency.h"
#include "device/presets.h"
#include "layout/olsq2.h"
#include "layout/tb.h"
#include "layout/verifier.h"

namespace olsq2::layout {
namespace {

std::vector<EncodingConfig> full_matrix() {
  std::vector<EncodingConfig> configs;
  for (const auto form : {Formulation::kOlsq2, Formulation::kOlsqBaseline}) {
    for (const auto vars : {VarEncoding::kBinary, VarEncoding::kOneHot}) {
      for (const auto inj :
           {InjectivityEncoding::kPairwise, InjectivityEncoding::kChanneling,
            InjectivityEncoding::kAmoPerQubit}) {
        for (const auto card :
             {CardEncoding::kSeqCounter, CardEncoding::kTotalizer,
              CardEncoding::kAdder}) {
          configs.push_back({form, vars, inj, card});
        }
      }
    }
  }
  return configs;
}

TEST(Differential, FixedBoundVerdictsAgreeAcrossAllConfigs) {
  const auto c = bengen::qaoa_3regular(4, 3);
  const auto dev = device::grid(2, 2);
  const Problem problem{&c, &dev, 1};
  const circuit::DependencyGraph deps(c);
  const int horizon = deps.default_upper_bound() + 2;

  // Reference verdicts for a sweep of swap bounds.
  std::vector<bool> reference;
  for (int bound = 0; bound <= 4; ++bound) {
    reference.push_back(solve_fixed(problem, horizon, bound).solved);
  }
  // Verdicts must be monotone in the bound.
  for (std::size_t i = 1; i < reference.size(); ++i) {
    if (reference[i - 1]) {
      EXPECT_TRUE(reference[i]) << "monotonicity broken at bound " << i;
    }
  }

  for (const EncodingConfig& config : full_matrix()) {
    for (int bound = 0; bound <= 4; ++bound) {
      const Result r = solve_fixed(problem, horizon, bound, config);
      EXPECT_EQ(r.solved, reference[bound])
          << config.label() << " card=" << static_cast<int>(config.cardinality)
          << " bound=" << bound;
      if (r.solved) {
        EXPECT_TRUE(verify(problem, r).ok) << config.label();
        EXPECT_LE(r.swap_count, bound);
      }
    }
  }
}

TEST(Differential, TbBlockVerdictsAgree) {
  const auto c = bengen::qaoa_3regular(6, 2);
  const auto dev = device::grid(2, 3);
  const Problem problem{&c, &dev, 1};
  // Reference: minimal satisfiable block count with default config.
  const Result reference = tb_synthesize_block_optimal(problem);
  ASSERT_TRUE(reference.solved);
  for (const auto vars : {VarEncoding::kBinary, VarEncoding::kOneHot}) {
    for (const auto inj :
         {InjectivityEncoding::kPairwise, InjectivityEncoding::kChanneling}) {
      EncodingConfig config;
      config.vars = vars;
      config.injectivity = inj;
      const Result r = tb_synthesize_block_optimal(problem, config);
      ASSERT_TRUE(r.solved) << config.label();
      EXPECT_EQ(r.depth, reference.depth) << config.label();
    }
  }
  // TB-OLSQ (space variables) agrees too.
  EncodingConfig baseline;
  baseline.formulation = Formulation::kOlsqBaseline;
  const Result tb_olsq = tb_synthesize_block_optimal(problem, baseline);
  ASSERT_TRUE(tb_olsq.solved);
  EXPECT_EQ(tb_olsq.depth, reference.depth);
}

TEST(Differential, SwapOptimaAgreeAcrossCardinalityEncodings) {
  const auto c = bengen::qaoa_3regular(6, 6);
  const auto dev = device::grid(2, 3);
  const Problem problem{&c, &dev, 1};
  const Result reference = synthesize_swap_optimal(problem);
  ASSERT_TRUE(reference.solved);
  for (const auto card :
       {CardEncoding::kSeqCounter, CardEncoding::kTotalizer,
        CardEncoding::kAdder}) {
    EncodingConfig config;
    config.cardinality = card;
    const Result r = synthesize_swap_optimal(problem, config);
    ASSERT_TRUE(r.solved) << static_cast<int>(card);
    EXPECT_EQ(r.swap_count, reference.swap_count)
        << "cardinality " << static_cast<int>(card);
  }
}

TEST(TbVerifier, DetectsCorruptedTransitionResults) {
  const auto c = bengen::qaoa_3regular(6, 2);
  const auto dev = device::grid(2, 3);
  const Problem problem{&c, &dev, 1};
  const Result good = tb_synthesize_swap_optimal(problem);
  ASSERT_TRUE(good.solved);
  ASSERT_TRUE(verify_transition_based(problem, good).ok);

  {
    Result bad = good;  // break per-block injectivity
    bad.mapping[0][1] = bad.mapping[0][0];
    EXPECT_FALSE(verify_transition_based(problem, bad).ok);
  }
  {
    Result bad = good;  // dependency order violated (if any dependency)
    const circuit::DependencyGraph deps(c);
    if (!deps.pairs().empty() && bad.depth > 1) {
      const auto [earlier, later] = deps.pairs().front();
      bad.gate_time[earlier] = bad.depth - 1;
      bad.gate_time[later] = 0;
      EXPECT_FALSE(verify_transition_based(problem, bad).ok);
    }
  }
  {
    Result bad = good;  // type confusion must be rejected
    bad.transition_based = false;
    EXPECT_FALSE(verify_transition_based(problem, bad).ok);
    Result wrong = good;
    EXPECT_FALSE(verify(problem, wrong).ok);
  }
}

}  // namespace
}  // namespace olsq2::layout
