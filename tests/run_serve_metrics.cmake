# ctest driver for the end-to-end metrics check: serve the golden manifest
# three times through a fresh cache with --metrics-out, then assert the
# Prometheus exposition contains the cache counters and a request-latency
# histogram whose _count equals the total request count. Invoked as
#   cmake -DSERVE_CLI=<exe> -DVALIDATOR=<exe> -DMANIFEST=<json>
#         -DBASE_DIR=<dir> -DCACHE_DIR=<dir> -DMETRICS_FILE=<path>
#         -DEXPECT_REQUESTS=<n> -P <this>
foreach(var SERVE_CLI VALIDATOR MANIFEST BASE_DIR CACHE_DIR METRICS_FILE
            EXPECT_REQUESTS)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_serve_metrics.cmake: ${var} not set")
  endif()
endforeach()

file(REMOVE_RECURSE "${CACHE_DIR}")
file(REMOVE "${METRICS_FILE}")

execute_process(
  COMMAND "${SERVE_CLI}"
          --manifest "${MANIFEST}"
          --base-dir "${BASE_DIR}"
          --cache-dir "${CACHE_DIR}"
          --repeat 3
          --metrics-out "${METRICS_FILE}"
          --metrics-format prom
  RESULT_VARIABLE serve_rc
  OUTPUT_QUIET)
if(NOT serve_rc EQUAL 0)
  message(FATAL_ERROR "olsq2_serve_cli exited with ${serve_rc}")
endif()

if(NOT EXISTS "${METRICS_FILE}")
  message(FATAL_ERROR "--metrics-out did not produce ${METRICS_FILE}")
endif()

# Rounds 2 and 3 answer entirely from the cache, so both hit and miss
# counters must be present and nonzero-able; the request histogram must
# account for every request exactly once.
execute_process(
  COMMAND "${VALIDATOR}" "${METRICS_FILE}"
          --sample serve_cache_hits_total
          --sample serve_cache_misses_total
          --sample serve_requests_total=${EXPECT_REQUESTS}
          --sample serve_request_duration_ms_count=${EXPECT_REQUESTS}
          --sample serve_request_duration_ms_sum
  RESULT_VARIABLE validate_rc)
if(NOT validate_rc EQUAL 0)
  message(FATAL_ERROR "metrics validation failed with ${validate_rc}")
endif()
