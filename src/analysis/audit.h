// Shared result type for the semantic encoding audits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace olsq2::analysis {

/// Outcome of a semantic audit: a batch of solver-backed obligation checks.
struct AuditResult {
  bool ok = true;
  /// Obligations actually discharged through the solver.
  std::int64_t checks = 0;
  /// Obligations skipped by sampling caps (0 = everything was checked).
  std::int64_t skipped = 0;
  /// One entry per violated (or inconclusive) obligation; capped.
  std::vector<std::string> errors;

  static constexpr std::size_t kMaxErrors = 16;

  void fail(std::string message) {
    ok = false;
    if (errors.size() < kMaxErrors) errors.push_back(std::move(message));
  }

  /// Fold `other` into this result (for multi-stage audits).
  void merge(const AuditResult& other) {
    ok = ok && other.ok;
    checks += other.checks;
    skipped += other.skipped;
    for (const std::string& e : other.errors) {
      if (errors.size() < kMaxErrors) errors.push_back(e);
    }
  }
};

}  // namespace olsq2::analysis
