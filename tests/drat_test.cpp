// Tests for DRAT proof logging and the independent RUP checker.
#include <random>

#include <gtest/gtest.h>

#include "sat/drat_check.h"
#include "sat/proof.h"
#include "sat/solver.h"

namespace olsq2::sat {
namespace {

void add_pigeonhole(Solver& s, int pigeons, int holes) {
  std::vector<std::vector<Var>> p(pigeons, std::vector<Var>(holes));
  for (auto& row : p) {
    for (auto& v : row) v = s.new_var();
  }
  for (int i = 0; i < pigeons; ++i) {
    std::vector<Lit> clause;
    for (int j = 0; j < holes; ++j) clause.push_back(Lit::pos(p[i][j]));
    s.add_clause(clause);
  }
  for (int j = 0; j < holes; ++j) {
    for (int i = 0; i < pigeons; ++i) {
      for (int k = i + 1; k < pigeons; ++k) {
        s.add_clause({Lit::neg(p[i][j]), Lit::neg(p[k][j])});
      }
    }
  }
}

TEST(Drat, TrivialContradictionProvesUnsat) {
  Solver s;
  Proof proof;
  s.set_proof(&proof);
  s.set_clause_log(true);
  const Var a = s.new_var();
  s.add_clause({Lit::pos(a)});
  s.add_clause({Lit::neg(a)});
  EXPECT_EQ(s.solve(), LBool::kFalse);
  EXPECT_TRUE(proof.derives_empty());
  const DratCheckResult check = check_drat(s.clause_log(), proof);
  EXPECT_TRUE(check.all_steps_valid) << "step " << check.first_invalid_step;
  EXPECT_TRUE(check.proves_unsat);
}

TEST(Drat, PigeonholeProofChecks) {
  for (int holes = 3; holes <= 5; ++holes) {
    Solver s;
    Proof proof;
    s.set_proof(&proof);
    s.set_clause_log(true);
    add_pigeonhole(s, holes + 1, holes);
    ASSERT_EQ(s.solve(), LBool::kFalse) << "holes " << holes;
    EXPECT_TRUE(proof.derives_empty());
    const DratCheckResult check = check_drat(s.clause_log(), proof);
    EXPECT_TRUE(check.all_steps_valid)
        << "holes " << holes << " step " << check.first_invalid_step;
    EXPECT_TRUE(check.proves_unsat);
  }
}

TEST(Drat, RandomUnsatInstancesCheck) {
  std::mt19937 rng(17);
  int checked = 0;
  for (int round = 0; round < 30 && checked < 8; ++round) {
    const int n = 8 + static_cast<int>(rng() % 5);
    const int m = 6 * n;  // well above threshold: almost surely UNSAT
    Solver s;
    Proof proof;
    s.set_proof(&proof);
    s.set_clause_log(true);
    for (int i = 0; i < n; ++i) s.new_var();
    bool ok = true;
    for (int c = 0; c < m && ok; ++c) {
      std::vector<Lit> clause;
      for (int k = 0; k < 3; ++k) {
        clause.emplace_back(static_cast<Var>(rng() % n), (rng() & 1) != 0);
      }
      ok = s.add_clause(clause);
    }
    const LBool status = ok ? s.solve() : LBool::kFalse;
    if (status != LBool::kFalse) continue;
    checked++;
    EXPECT_TRUE(proof.derives_empty());
    const DratCheckResult check = check_drat(s.clause_log(), proof);
    EXPECT_TRUE(check.all_steps_valid) << "step " << check.first_invalid_step;
    EXPECT_TRUE(check.proves_unsat);
  }
  EXPECT_GT(checked, 0);
}

TEST(Drat, SatRunsLeaveCheckableNonRefutationProof) {
  Solver s;
  Proof proof;
  s.set_proof(&proof);
  s.set_clause_log(true);
  // Satisfiable random-ish instance with some search effort.
  std::mt19937 rng(3);
  const int n = 20;
  for (int i = 0; i < n; ++i) s.new_var();
  for (int c = 0; c < 60; ++c) {
    std::vector<Lit> clause;
    for (int k = 0; k < 3; ++k) {
      clause.emplace_back(static_cast<Var>(rng() % n), (rng() & 1) != 0);
    }
    s.add_clause(clause);
  }
  if (s.solve() == LBool::kTrue) {
    EXPECT_FALSE(proof.derives_empty());
    const DratCheckResult check = check_drat(s.clause_log(), proof);
    EXPECT_TRUE(check.all_steps_valid) << "step " << check.first_invalid_step;
    EXPECT_FALSE(check.proves_unsat);
  }
}

TEST(Drat, CheckerRejectsBogusStep) {
  // A clause that is not RUP w.r.t. the database must be flagged.
  std::vector<Clause> cnf = {{Lit::pos(0), Lit::pos(1)}};
  Proof proof;
  proof.add({Lit::pos(0)});  // not implied: {~0} + propagate yields no conflict
  const DratCheckResult check = check_drat(cnf, proof);
  EXPECT_FALSE(check.all_steps_valid);
  EXPECT_EQ(check.first_invalid_step, 0);
}

TEST(Drat, TextSerialization) {
  Proof proof;
  proof.add({Lit::pos(0), Lit::neg(2)});
  proof.remove({Lit::pos(0), Lit::neg(2)});
  proof.add({});
  const std::string text = proof.to_drat();
  EXPECT_EQ(text, "1 -3 0\nd 1 -3 0\n0\n");
}

TEST(Drat, DeletionsDoNotBreakLaterSteps) {
  // After deleting a clause, steps that relied on it must fail; steps that
  // do not still succeed.
  std::vector<Clause> cnf = {{Lit::pos(0)}, {Lit::neg(0), Lit::pos(1)}};
  {
    Proof proof;
    proof.add({Lit::pos(1)});  // RUP via both clauses
    EXPECT_TRUE(check_drat(cnf, proof).all_steps_valid);
  }
  {
    Proof proof;
    proof.remove({Lit::neg(0), Lit::pos(1)});
    proof.add({Lit::pos(1)});  // no longer derivable
    EXPECT_FALSE(check_drat(cnf, proof).all_steps_valid);
  }
}

}  // namespace
}  // namespace olsq2::sat
