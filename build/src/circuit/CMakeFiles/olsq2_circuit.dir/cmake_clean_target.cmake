file(REMOVE_RECURSE
  "libolsq2_circuit.a"
)
