// olsq2_serve: batch layout-synthesis server with an instance-
// canonicalizing result cache.
//
//   $ ./olsq2_serve --manifest FILE [options]
//     --manifest FILE   request manifest (serve/manifest.h schema)
//     --base-dir DIR    resolve relative paths against DIR
//                       (default: the manifest's directory)
//     --cache-dir DIR   enable the persistent cache tier in DIR
//     --lru N           in-memory cache capacity                (default 256)
//     --no-cache        disable all caching (baseline mode)
//     --repeat K        serve the whole manifest K times        (default 1)
//     --json FILE       write a machine-readable report to FILE
//     --metrics-out FILE    write the metrics registry to FILE on exit
//     --metrics-format F    exposition format: prom | json
//                           (default: inferred, *.json => json)
//
// Both `--flag value` and `--flag=value` spellings are accepted. Requests
// carrying an "expect" block are checked against the returned optima; any
// deviation is reported and the exit code is 1 (0 otherwise), so a golden
// manifest doubles as a regression gate.
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "layout/json.h"
#include "obs/expose.h"
#include "obs/json_escape.h"
#include "obs/metrics.h"
#include "serve/batch.h"
#include "serve/manifest.h"

namespace {

using namespace olsq2;

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "olsq2_serve: " << message << "\n"
            << "usage: olsq2_serve --manifest FILE [--base-dir DIR]\n"
            << "                   [--cache-dir DIR] [--lru N] [--no-cache]\n"
            << "                   [--repeat K] [--json FILE]\n"
            << "                   [--metrics-out FILE] "
               "[--metrics-format prom|json]\n";
  std::exit(2);
}

bool flag_value(std::vector<std::string>& args, std::size_t& i,
                const std::string& flag, std::string& value) {
  const std::string& arg = args[i];
  if (arg == flag) {
    if (i + 1 >= args.size()) usage_error(flag + " needs a value");
    value = args[++i];
    return true;
  }
  if (arg.rfind(flag + "=", 0) == 0) {
    value = arg.substr(flag.size() + 1);
    return true;
  }
  return false;
}

struct Outcome {
  serve::ManifestEntry entry;
  serve::Response response;
  double wall_ms = 0.0;
  bool expect_ok = true;
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string manifest_path;
  std::string base_dir;
  bool base_dir_set = false;
  std::string json_path;
  serve::ServerOptions server_options;
  int repeat = 1;
  std::string metrics_path;
  std::string metrics_format;

  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string value;
    if (flag_value(args, i, "--manifest", value)) {
      manifest_path = value;
    } else if (flag_value(args, i, "--base-dir", value)) {
      base_dir = value;
      base_dir_set = true;
    } else if (flag_value(args, i, "--cache-dir", value)) {
      server_options.cache.disk_dir = value;
    } else if (flag_value(args, i, "--lru", value)) {
      server_options.cache.max_entries = std::stoul(value);
    } else if (args[i] == "--no-cache") {
      server_options.use_cache = false;
    } else if (flag_value(args, i, "--repeat", value)) {
      repeat = std::stoi(value);
    } else if (flag_value(args, i, "--json", value)) {
      json_path = value;
    } else if (flag_value(args, i, "--metrics-out", value)) {
      metrics_path = value;
    } else if (flag_value(args, i, "--metrics-format", value)) {
      metrics_format = value;
    } else {
      usage_error("unknown option '" + args[i] + "'");
    }
  }
  if (manifest_path.empty()) usage_error("--manifest is required");
  if (repeat < 1) usage_error("--repeat must be >= 1");
  if (!metrics_format.empty() && metrics_format != "prom" &&
      metrics_format != "json") {
    usage_error("--metrics-format must be prom or json");
  }
  if (!metrics_format.empty() && metrics_path.empty()) {
    usage_error("--metrics-format requires --metrics-out");
  }
  // Enable before the server (and its cache) is built, so every metric the
  // serving path can touch is registered — a scrape shows zeros, not holes.
  if (!metrics_path.empty()) obs::metrics::set_enabled(true);
  if (!base_dir_set) {
    base_dir = std::filesystem::path(manifest_path).parent_path().string();
  }

  int failures = 0;
  std::vector<Outcome> outcomes;
  serve::Server server(server_options);
  try {
    const serve::Manifest manifest = serve::load_manifest(manifest_path);
    const serve::LoadedManifest loaded =
        serve::materialize_manifest(manifest, base_dir);

    for (int round = 0; round < repeat; ++round) {
      const auto start = std::chrono::steady_clock::now();
      const std::vector<serve::Response> responses =
          server.serve_batch(loaded.requests);
      const double batch_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start)
              .count();

      for (std::size_t i = 0; i < responses.size(); ++i) {
        Outcome outcome;
        outcome.entry = loaded.entries[i];
        outcome.response = responses[i];
        outcome.wall_ms = responses[i].result.wall_ms;
        const auto& result = responses[i].result;
        if (outcome.entry.has_expect && result.solved) {
          if (outcome.entry.expect_depth >= 0 &&
              result.depth != outcome.entry.expect_depth) {
            outcome.expect_ok = false;
          }
          if (outcome.entry.expect_swaps >= 0 &&
              result.swap_count != outcome.entry.expect_swaps) {
            outcome.expect_ok = false;
          }
        } else if (outcome.entry.has_expect) {
          outcome.expect_ok = false;  // expected an optimum, got no solution
        }
        if (!outcome.expect_ok) failures++;

        std::cout << (round > 0 ? "  [round " + std::to_string(round + 1) +
                                      "] "
                                : "  ")
                  << loaded.requests[i].tag << " [" << outcome.entry.engine
                  << "] ";
        if (result.solved) {
          std::cout << "depth=" << result.depth
                    << " swaps=" << result.swap_count;
        } else {
          std::cout << "UNSOLVED";
        }
        std::cout << (responses[i].cache_hit
                          ? (responses[i].from_disk ? " (disk hit)" : " (hit)")
                          : " (solved)");
        if (responses[i].has_depth_cert || responses[i].has_swap_cert) {
          const layout::Certificate& cert = responses[i].has_depth_cert
                                                ? responses[i].depth_cert
                                                : responses[i].swap_cert;
          std::cout << (cert.certified() ? " [certified]"
                                         : " [certificate FAILED]");
        }
        if (!outcome.expect_ok) {
          std::cout << "  EXPECT MISMATCH (want depth="
                    << outcome.entry.expect_depth
                    << " swaps=" << outcome.entry.expect_swaps << ")";
        }
        std::cout << "\n";
        outcomes.push_back(outcome);
      }
      std::cout << "round " << round + 1 << ": " << responses.size()
                << " requests in " << batch_ms << " ms\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "olsq2_serve: " << e.what() << "\n";
    return 2;
  }

  const serve::CacheStats& stats = server.cache().stats();
  std::cout << "cache: " << stats.hits << " hits (" << stats.disk_hits
            << " disk), " << stats.misses << " misses, " << stats.inserts
            << " inserts, " << stats.evictions << " evictions, "
            << stats.bytes_written << "B written, " << stats.bytes_read
            << "B read\n";

  if (!json_path.empty()) {
    std::ostringstream out;
    out << "{\"responses\":[";
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const Outcome& o = outcomes[i];
      if (i) out << ",";
      out << "{\"name\":\"" << obs::json_escape(o.entry.name) << "\""
          << ",\"engine\":\"" << o.entry.engine << "\""
          << ",\"solved\":" << (o.response.result.solved ? "true" : "false")
          << ",\"depth\":" << o.response.result.depth
          << ",\"swap_count\":" << o.response.result.swap_count
          << ",\"cache_hit\":" << (o.response.cache_hit ? "true" : "false")
          << ",\"expect_ok\":" << (o.expect_ok ? "true" : "false")
          << ",\"wall_ms\":" << o.wall_ms << "}";
    }
    out << "],\"cache\":{\"hits\":" << stats.hits
        << ",\"disk_hits\":" << stats.disk_hits
        << ",\"misses\":" << stats.misses << ",\"inserts\":" << stats.inserts
        << ",\"evictions\":" << stats.evictions
        << ",\"bytes_written\":" << stats.bytes_written
        << ",\"bytes_read\":" << stats.bytes_read << "}}\n";
    std::ofstream file(json_path);
    if (!file) {
      std::cerr << "olsq2_serve: cannot write " << json_path << "\n";
      return 2;
    }
    file << out.str();
  }

  if (!metrics_path.empty() &&
      !obs::metrics::write_metrics_file(metrics_path, metrics_format)) {
    std::cerr << "olsq2_serve: cannot write " << metrics_path << "\n";
    return 2;
  }

  if (failures > 0) {
    std::cerr << "olsq2_serve: " << failures << " expectation(s) failed\n";
    return 1;
  }
  return 0;
}
