// olsq2_benchdiff: gate CI on benchmark regressions.
//
//   $ ./olsq2_benchdiff BASELINE.json CURRENT.json [options]
//     --max-regress P      tolerated relative timing increase, e.g.
//                          "15%" or "0.15"                    (default 15%)
//     --min-ms N           timing noise floor in milliseconds (default 20)
//     --max-ratio-drop P   tolerated relative ratio (speedup)
//                          decrease                           (default 50%)
//
// Exit codes: 0 = no regression, 1 = regression, 2 = documents not
// comparable (schema/config mismatch) or unreadable input. See
// tools/benchdiff.h for the key classification.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/benchdiff.h"

namespace {

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "olsq2_benchdiff: " << message << "\n"
            << "usage: olsq2_benchdiff BASELINE.json CURRENT.json\n"
            << "                       [--max-regress P%] [--min-ms N]\n"
            << "                       [--max-ratio-drop P%]\n";
  std::exit(2);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) usage_error("cannot read " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// "15%" -> 0.15, "0.15" -> 0.15.
double parse_fraction(std::string text) {
  bool percent = false;
  if (!text.empty() && text.back() == '%') {
    percent = true;
    text.pop_back();
  }
  std::size_t consumed = 0;
  double v = 0;
  try {
    v = std::stod(text, &consumed);
  } catch (const std::exception&) {
    usage_error("bad fraction '" + text + "'");
  }
  if (consumed != text.size() || v < 0) {
    usage_error("bad fraction '" + text + "'");
  }
  return percent ? v / 100.0 : v;
}

void print_section(const char* title, const std::vector<std::string>& lines) {
  if (lines.empty()) return;
  std::cout << title << "\n";
  for (const auto& line : lines) std::cout << "  " << line << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::vector<std::string> files;
  olsq2::tools::DiffOptions options;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value_of = [&](const std::string& flag) -> std::string {
      if (arg.rfind(flag + "=", 0) == 0) return arg.substr(flag.size() + 1);
      if (i + 1 >= args.size()) usage_error(flag + " needs a value");
      return args[++i];
    };
    if (arg == "--max-regress" || arg.rfind("--max-regress=", 0) == 0) {
      options.max_regress = parse_fraction(value_of("--max-regress"));
    } else if (arg == "--min-ms" || arg.rfind("--min-ms=", 0) == 0) {
      options.min_ms = parse_fraction(value_of("--min-ms"));
    } else if (arg == "--max-ratio-drop" ||
               arg.rfind("--max-ratio-drop=", 0) == 0) {
      options.max_ratio_drop = parse_fraction(value_of("--max-ratio-drop"));
    } else if (!arg.empty() && arg[0] == '-') {
      usage_error("unknown option '" + arg + "'");
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) usage_error("expected BASELINE.json CURRENT.json");

  const std::string baseline = read_file(files[0]);
  const std::string current = read_file(files[1]);
  const olsq2::tools::DiffReport report =
      olsq2::tools::diff_bench_json(baseline, current, options);

  print_section("CONFIG MISMATCH:", report.mismatches);
  print_section("REGRESSIONS:", report.regressions);
  print_section("improvements:", report.improvements);
  print_section("notes:", report.notes);

  switch (report.status) {
    case olsq2::tools::DiffStatus::kOk:
      std::cout << "benchdiff: OK (" << files[1] << " vs baseline "
                << files[0] << ")\n";
      return 0;
    case olsq2::tools::DiffStatus::kRegression:
      std::cerr << "benchdiff: " << report.regressions.size()
                << " regression(s)\n";
      return 1;
    case olsq2::tools::DiffStatus::kError:
      std::cerr << "benchdiff: runs not comparable\n";
      return 2;
  }
  return 2;
}
