// Registry semantics under concurrency: exact counting across threads,
// histogram percentile bounds, and label-set series identity. The suite
// name (MetricsRegistry*) is part of the TSan CI job's -R filter, so every
// test here doubles as a data-race check.
#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace olsq2::obs::metrics {
namespace {

class MetricsRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    Registry::instance().reset_all();
  }
  void TearDown() override { set_enabled(false); }
};

TEST_F(MetricsRegistryTest, ConcurrentIncrementsSumExactly) {
  Counter& c = Registry::instance().counter("test_concurrent_total");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST_F(MetricsRegistryTest, ConcurrentHistogramObservesCountExactly) {
  Histogram& h = Registry::instance().histogram("test_concurrent_hist_ms");
  constexpr int kThreads = 8;
  constexpr int kObserves = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kObserves; ++i) {
        h.observe(0.5 + t + i % 10);
      }
    });
  }
  for (auto& t : threads) t.join();
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kObserves);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : snap.bucket_counts) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 0.5 + (kThreads - 1) + 9);
}

TEST_F(MetricsRegistryTest, HistogramExactAggregatesAndQuantileBounds) {
  Histogram& h = Registry::instance().histogram("test_quantile_ms");
  double sum = 0;
  for (int i = 1; i <= 1000; ++i) {
    h.observe(static_cast<double>(i));
    sum += i;
  }
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_DOUBLE_EQ(snap.sum, sum);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 1000.0);
  for (const double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    const double v = snap.quantile(q);
    EXPECT_GE(v, snap.min) << "q=" << q;
    EXPECT_LE(v, snap.max) << "q=" << q;
  }
  // Log2 buckets bound the relative error: the true p50 is 500, so the
  // estimate must land within the enclosing power-of-two bucket (256, 512].
  const double p50 = snap.quantile(0.5);
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 512.0 + 1e-9);
  // Quantiles are monotone in q.
  EXPECT_LE(snap.quantile(0.5), snap.quantile(0.9));
  EXPECT_LE(snap.quantile(0.9), snap.quantile(0.99));
}

TEST_F(MetricsRegistryTest, HistogramOverflowBucket) {
  Histogram& h = Registry::instance().histogram("test_overflow_ms");
  h.observe(1e30);  // beyond the largest finite bound
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.bucket_counts.back(), 1u);
  EXPECT_TRUE(std::isinf(HistogramSnapshot::bucket_upper(
      snap.bucket_counts.size() - 1)));
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 1e30);  // clamped to exact max
}

TEST_F(MetricsRegistryTest, LabelSetsSelectDistinctSeries) {
  Registry& reg = Registry::instance();
  Counter& a = reg.counter("test_labeled_total", "", {{"engine", "tr"}});
  Counter& b = reg.counter("test_labeled_total", "", {{"engine", "tb"}});
  Counter& a_again = reg.counter("test_labeled_total", "", {{"engine", "tr"}});
  EXPECT_NE(&a, &b);
  EXPECT_EQ(&a, &a_again);  // same name+labels => same object
  a.inc(3);
  b.inc(5);
  EXPECT_EQ(a.value(), 3u);
  EXPECT_EQ(b.value(), 5u);

  bool found = false;
  for (const auto& fam : reg.snapshot()) {
    if (fam.name != "test_labeled_total") continue;
    found = true;
    EXPECT_EQ(fam.series.size(), 2u);
  }
  EXPECT_TRUE(found);
}

TEST_F(MetricsRegistryTest, KindClashThrows) {
  Registry& reg = Registry::instance();
  reg.counter("test_kind_clash");
  EXPECT_THROW(reg.gauge("test_kind_clash"), std::logic_error);
  EXPECT_THROW(reg.histogram("test_kind_clash"), std::logic_error);
}

TEST_F(MetricsRegistryTest, DisabledRecordingIsDropped) {
  Counter& c = Registry::instance().counter("test_disabled_total");
  Gauge& g = Registry::instance().gauge("test_disabled_gauge");
  Histogram& h = Registry::instance().histogram("test_disabled_ms");
  set_enabled(false);
  c.inc(7);
  g.set(3.5);
  h.observe(1.0);
  set_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST_F(MetricsRegistryTest, GaugeSetAndAdd) {
  Gauge& g = Registry::instance().gauge("test_gauge_bytes");
  g.set(100.0);
  g.add(-25.0);
  g.add(50.0);
  EXPECT_DOUBLE_EQ(g.value(), 125.0);
}

TEST_F(MetricsRegistryTest, ResetAllKeepsHandlesValid) {
  Counter& c = Registry::instance().counter("test_reset_total");
  c.inc(9);
  Registry::instance().reset_all();
  EXPECT_EQ(c.value(), 0u);
  c.inc(2);  // handle still counts into the same storage
  EXPECT_EQ(c.value(), 2u);
}

TEST_F(MetricsRegistryTest, ShortHashIsStableAndBounded) {
  const std::string h1 = short_hash("group-key-a");
  const std::string h2 = short_hash("group-key-a");
  const std::string h3 = short_hash("group-key-b");
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1, h3);
  EXPECT_EQ(h1.size(), 8u);
}

}  // namespace
}  // namespace olsq2::obs::metrics
