file(REMOVE_RECURSE
  "CMakeFiles/fdvar_test.dir/fdvar_test.cpp.o"
  "CMakeFiles/fdvar_test.dir/fdvar_test.cpp.o.d"
  "fdvar_test"
  "fdvar_test.pdb"
  "fdvar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdvar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
