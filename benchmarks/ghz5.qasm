// 5-qubit GHZ state preparation: maximal dependency chain.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
h q[0];
cx q[0], q[1];
cx q[1], q[2];
cx q[2], q[3];
cx q[3], q[4];
