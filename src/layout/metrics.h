// Success-rate estimation for synthesized circuits.
//
// The paper's motivation (§I): NISQ success rate suffers from short
// coherence times, imperfect gates, and environmental noise, so layout
// synthesis minimizes depth (execution time) and SWAP count (gate count).
// This module quantifies that link with the standard product model:
//
//   success = Π (1 - e_1)^{#1q}  ·  (1 - e_2)^{#2q + 3·#SWAP}
//             · Π_q exp(-T · t_step / T_coherence)
//
// i.e. every SWAP costs three two-qubit gates and every extra time step
// costs coherence on every live qubit. Exact synthesizers improve both
// factors; the estimator makes the improvement reportable.
#pragma once

#include "layout/types.h"

namespace olsq2::layout {

struct NoiseModel {
  double single_qubit_error = 1e-4;   // per-gate Pauli error
  double two_qubit_error = 5e-3;      // per-CNOT error
  double step_duration_ns = 300.0;    // one scheduling time step
  double coherence_time_ns = 1.0e5;   // T2-like decay constant (100 us)
  /// CNOTs per SWAP when expanding inserted SWAPs.
  int cnots_per_swap = 3;
};

struct FidelityBreakdown {
  double gate_fidelity = 1.0;        // product over gate errors
  double coherence_fidelity = 1.0;   // decoherence over the schedule
  double success_rate = 1.0;         // product of the two
  int single_qubit_gates = 0;
  int two_qubit_gates = 0;
  int swap_cnots = 0;
};

/// Estimate the success rate of a synthesis result. For transition-based
/// results the block count is converted to a depth estimate using the
/// problem's swap duration per transition.
FidelityBreakdown estimate_success(const Problem& problem, const Result& result,
                                   const NoiseModel& noise = {});

/// Convenience: estimate for a routed heuristic result given its depth and
/// SWAP count (e.g. SABRE output).
FidelityBreakdown estimate_success_counts(const Problem& problem, int depth,
                                          int swap_count,
                                          const NoiseModel& noise = {});

}  // namespace olsq2::layout
