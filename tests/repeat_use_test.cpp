// Stateful-reuse regression tests: components that the serve layer (and the
// portfolio) call repeatedly on different problems must either fully reset
// their internal state per call or namespace it per problem.
//
//   sat::Preprocessor::run   - must clear output/eliminations/stats so a
//     second run is byte-identical to a fresh object's run.
//   layout::Model            - repeated bound requests must be cached (no
//     new solver variables) and repeated solves under the same assumptions
//     must reproduce the same verdict and objectives.
//   sat::ClauseExchange      - begin_problem() must fence bound facts and
//     clause traffic between batch items; a stale depth-UNSAT fact from
//     problem A silently corrupts problem B's reported optimum otherwise.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "device/presets.h"
#include "layout/model.h"
#include "layout/olsq2.h"
#include "sat/exchange.h"
#include "sat/preprocess.h"
#include "sat/types.h"

namespace olsq2 {
namespace {

using sat::Lit;

// A small mixed clause set exercising every preprocessing rule: a unit,
// subsumption pairs, a self-subsuming resolution, and BVE candidates.
std::vector<sat::Clause> preprocess_fixture() {
  const Lit a = Lit::pos(0), b = Lit::pos(1), c = Lit::pos(2);
  const Lit d = Lit::pos(3), e = Lit::pos(4);
  return {
      {a},                // unit
      {a, b},             // subsumed by {a} after propagation
      {~a, b, c},         // strengthened / propagated
      {~b, c, d},
      {~c, d, e},
      {~d, ~e},
      {b, ~c, e},
      {~a, ~b, ~e},
  };
}

TEST(PreprocessorReuse, SecondRunMatchesFreshObject) {
  sat::Preprocessor reused;
  ASSERT_TRUE(reused.run(5, preprocess_fixture()));
  const auto first_clauses = reused.clauses();
  const auto first_stats = reused.stats();

  // Same object, same input: everything must be reset internally.
  ASSERT_TRUE(reused.run(5, preprocess_fixture()));
  EXPECT_EQ(reused.clauses(), first_clauses);

  sat::Preprocessor fresh;
  ASSERT_TRUE(fresh.run(5, preprocess_fixture()));
  EXPECT_EQ(fresh.clauses(), first_clauses);
  EXPECT_EQ(fresh.stats().propagated_units, first_stats.propagated_units);
  EXPECT_EQ(fresh.stats().subsumed_clauses, first_stats.subsumed_clauses);
  EXPECT_EQ(fresh.stats().strengthened_literals,
            first_stats.strengthened_literals);
  EXPECT_EQ(fresh.stats().eliminated_vars, first_stats.eliminated_vars);

  // Model reconstruction still works after the re-run (eliminations were
  // rebuilt, not appended twice).
  std::vector<sat::LBool> model(5, sat::LBool::kUndef);
  model[0] = sat::LBool::kTrue;  // the unit
  reused.extend_model(model);
  for (const auto& clause : preprocess_fixture()) {
    bool satisfied = false;
    for (const Lit l : clause) {
      if (model[l.var()] == sat::LBool::kUndef) continue;
      if (sat::lit_value(model[l.var()], l.sign()) == sat::LBool::kTrue) {
        satisfied = true;
        break;
      }
    }
    // Clauses over retained-but-unassigned vars are fine; fully assigned
    // clauses must be satisfied.
    bool fully_assigned = true;
    for (const Lit l : clause)
      fully_assigned &= model[l.var()] != sat::LBool::kUndef;
    if (fully_assigned) {
      EXPECT_TRUE(satisfied);
    }
  }

  // A second run on a *different* formula must not leak the first one's
  // eliminations into model reconstruction.
  std::vector<sat::Clause> other = {{Lit::pos(0), Lit::pos(1)},
                                    {~Lit::pos(0), Lit::pos(1)}};
  ASSERT_TRUE(reused.run(2, other));
  std::vector<sat::LBool> small(2, sat::LBool::kUndef);
  small[1] = sat::LBool::kTrue;
  reused.extend_model(small);  // must not index vars 2..4 of the old run
  EXPECT_EQ(small[1], sat::LBool::kTrue);
}

// Triangle interaction graph on a 1x3 line: the canonical needs-a-SWAP
// instance used across the test suite (certify_test, serve_test).
circuit::Circuit triangle() {
  circuit::Circuit c(3, "triangle");
  c.add_gate("zz", 0, 1);
  c.add_gate("zz", 1, 2);
  c.add_gate("zz", 0, 2);
  return c;
}

TEST(ModelReuse, BoundRequestsAreIdempotentAndSolvesDeterministic) {
  const auto circ = triangle();
  const auto dev = device::grid(1, 3);
  const layout::Problem problem{&circ, &dev, 1};
  layout::Model model(problem, /*t_ub=*/6, layout::EncodingConfig{});

  const Lit d4 = model.depth_bound(4);
  const Lit s1 = model.swap_bound(1);
  const auto vars_after_first = model.solver().num_vars();

  // Re-requesting the same bounds must hit the cache, not mint variables.
  EXPECT_EQ(model.depth_bound(4), d4);
  EXPECT_EQ(model.swap_bound(1), s1);
  EXPECT_EQ(model.solver().num_vars(), vars_after_first);

  const std::vector<Lit> assumptions{d4, s1};
  const sat::LBool first = model.solver().solve(assumptions);
  ASSERT_EQ(first, sat::LBool::kTrue);
  const layout::Result r1 = model.extract();
  ASSERT_TRUE(r1.solved);

  // Same model, same assumptions, again: the incremental solver keeps its
  // learnt clauses but the verdict and objectives must not drift.
  const sat::LBool second = model.solver().solve(assumptions);
  ASSERT_EQ(second, sat::LBool::kTrue);
  const layout::Result r2 = model.extract();
  EXPECT_EQ(r2.depth, r1.depth);
  EXPECT_EQ(r2.swap_count, r1.swap_count);
  EXPECT_EQ(model.solver().num_vars(), vars_after_first);
}

TEST(ExchangeReuse, BeginProblemClearsFactsAndSameKeyIsANoOp) {
  sat::ClauseExchange hub;
  hub.begin_problem("instance-A");
  hub.note_depth_unsat(7);
  hub.note_depth_sat(12);
  hub.note_swap_unsat(12, 2);
  ASSERT_EQ(hub.depth_unsat_max(), 7);
  ASSERT_TRUE(hub.swap_known_unsat(12, 2));

  // Re-declaring the same problem must keep the facts (batch groups call
  // begin_problem once per engine run on the same instance).
  hub.begin_problem("instance-A");
  EXPECT_EQ(hub.depth_unsat_max(), 7);
  EXPECT_EQ(hub.depth_sat_min(), 12);
  EXPECT_TRUE(hub.swap_known_unsat(12, 2));

  // Switching problems drops every fact.
  hub.begin_problem("instance-B");
  EXPECT_EQ(hub.depth_unsat_max(), -1);
  EXPECT_EQ(hub.depth_sat_min(), std::numeric_limits<int>::max());
  EXPECT_FALSE(hub.swap_known_unsat(12, 2));
}

TEST(ExchangeReuse, GroupsAreNamespacedPerProblem) {
  sat::ClauseExchange hub;
  hub.begin_problem("instance-A");
  const int s1 = hub.add_solver("cfg");
  hub.begin_problem("instance-B");
  // Same group string, different problem: must land in a distinct group.
  const int s2 = hub.add_solver("cfg");
  const int s3 = hub.add_solver("cfg");

  // s1 (problem A's group) publishes after the switch; only B's members
  // may exchange with each other, and neither may hear from s1.
  const std::vector<Lit> unit{Lit::pos(0)};
  ASSERT_TRUE(hub.publish(s1, unit, 1));
  std::size_t delivered_to_b = 0;
  delivered_to_b += hub.collect(s2, [](auto, unsigned) {});
  delivered_to_b += hub.collect(s3, [](auto, unsigned) {});
  EXPECT_EQ(delivered_to_b, 0u);

  const std::vector<Lit> binary{Lit::pos(1), Lit::neg(2)};
  ASSERT_TRUE(hub.publish(s2, binary, 2));
  std::size_t got = 0;
  got += hub.collect(s3, [](auto, unsigned) {});
  EXPECT_EQ(got, 1u);
  EXPECT_EQ(hub.collect(s1, [](auto, unsigned) {}), 0u);
}

// End-to-end fence check: a hub poisoned with a stale depth-UNSAT fact from
// a previous problem must not inflate the next problem's reported optimum
// once begin_problem() declares the switch. This is exactly the reuse
// pattern of serve::Server::serve_batch.
TEST(ExchangeReuse, StaleFactsCannotCorruptTheNextProblemsOptimum) {
  const auto circ = triangle();
  const auto dev = device::grid(1, 3);
  const layout::Problem problem{&circ, &dev, 1};

  const layout::Result baseline = synthesize_depth_optimal(problem);
  ASSERT_TRUE(baseline.solved);

  sat::ClauseExchange hub;
  hub.begin_problem("some-other-instance");
  hub.note_depth_unsat(baseline.depth + 3);  // true for A, poison for B
  ASSERT_GT(hub.depth_unsat_max(), baseline.depth);

  hub.begin_problem("triangle-on-line");
  layout::OptimizerOptions options;
  options.exchange = &hub;
  const layout::Result fenced =
      synthesize_depth_optimal(problem, layout::EncodingConfig{}, options);
  ASSERT_TRUE(fenced.solved);
  EXPECT_EQ(fenced.depth, baseline.depth);

  // The run itself repopulates the facts for the *current* problem.
  EXPECT_EQ(hub.depth_unsat_max(), fenced.depth - 1);
}

}  // namespace
}  // namespace olsq2
