// Unit + property tests for the CDCL SAT solver.
#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "sat/luby.h"
#include "sat/solver.h"
#include "sat/types.h"

namespace olsq2::sat {
namespace {

using Cnf = std::vector<std::vector<Lit>>;

// Exhaustive reference check: is the CNF satisfiable over n variables?
bool brute_force_sat(int n, const Cnf& cnf) {
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    bool all = true;
    for (const auto& clause : cnf) {
      bool any = false;
      for (const Lit l : clause) {
        const bool v = ((mask >> l.var()) & 1) != 0;
        if (v != l.sign()) {
          any = true;
          break;
        }
      }
      if (!any) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

bool model_satisfies(const Solver& s, const Cnf& cnf) {
  for (const auto& clause : cnf) {
    bool any = false;
    for (const Lit l : clause) {
      if (s.model_value(l) == LBool::kTrue) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  return true;
}

TEST(Luby, PrefixMatchesDefinition) {
  const std::vector<std::uint64_t> expect = {1, 1, 2, 1, 1, 2, 4, 1, 1,
                                             2, 1, 1, 2, 4, 8, 1};
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(luby(i), expect[i]) << "index " << i;
  }
}

TEST(LitPacking, RoundTrips) {
  const Lit a = Lit::pos(7);
  EXPECT_EQ(a.var(), 7);
  EXPECT_FALSE(a.sign());
  EXPECT_EQ((~a).var(), 7);
  EXPECT_TRUE((~a).sign());
  EXPECT_EQ(~~a, a);
  EXPECT_EQ(Lit::from_code(a.code()), a);
}

TEST(SolverBasic, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

TEST(SolverBasic, SingleUnit) {
  Solver s;
  const Var v = s.new_var();
  ASSERT_TRUE(s.add_clause({Lit::pos(v)}));
  EXPECT_EQ(s.solve(), LBool::kTrue);
  EXPECT_EQ(s.model_value(v), LBool::kTrue);
}

TEST(SolverBasic, ConflictingUnitsAreUnsat) {
  Solver s;
  const Var v = s.new_var();
  EXPECT_TRUE(s.add_clause({Lit::pos(v)}));
  EXPECT_FALSE(s.add_clause({Lit::neg(v)}));
  EXPECT_EQ(s.solve(), LBool::kFalse);
  EXPECT_FALSE(s.okay());
}

TEST(SolverBasic, TautologyIsIgnored) {
  Solver s;
  const Var v = s.new_var();
  EXPECT_TRUE(s.add_clause({Lit::pos(v), Lit::neg(v)}));
  EXPECT_EQ(s.num_clauses(), 0);
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

TEST(SolverBasic, DuplicateLiteralsCollapse) {
  Solver s;
  const Var v = s.new_var();
  const Var w = s.new_var();
  EXPECT_TRUE(s.add_clause({Lit::pos(v), Lit::pos(v), Lit::pos(w)}));
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

TEST(SolverBasic, SimpleImplicationChain) {
  // x0 -> x1 -> ... -> x9, with x0 forced true and ~x9: UNSAT.
  Solver s;
  std::vector<Var> x;
  for (int i = 0; i < 10; ++i) x.push_back(s.new_var());
  ASSERT_TRUE(s.add_clause({Lit::pos(x[0])}));
  for (int i = 0; i + 1 < 10; ++i) {
    ASSERT_TRUE(s.add_clause({Lit::neg(x[i]), Lit::pos(x[i + 1])}));
  }
  EXPECT_EQ(s.solve(), LBool::kTrue);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(s.model_value(x[i]), LBool::kTrue);
  s.add_clause({Lit::neg(x[9])});
  EXPECT_EQ(s.solve(), LBool::kFalse);
}

// Pigeonhole principle PHP(n+1, n) is a classic hard UNSAT family.
void add_pigeonhole(Solver& s, int pigeons, int holes,
                    std::vector<std::vector<Var>>& p) {
  p.assign(pigeons, std::vector<Var>(holes));
  for (int i = 0; i < pigeons; ++i)
    for (int j = 0; j < holes; ++j) p[i][j] = s.new_var();
  for (int i = 0; i < pigeons; ++i) {
    std::vector<Lit> clause;
    for (int j = 0; j < holes; ++j) clause.push_back(Lit::pos(p[i][j]));
    s.add_clause(clause);
  }
  for (int j = 0; j < holes; ++j)
    for (int i = 0; i < pigeons; ++i)
      for (int k = i + 1; k < pigeons; ++k)
        s.add_clause({Lit::neg(p[i][j]), Lit::neg(p[k][j])});
}

TEST(SolverHard, PigeonholeUnsat) {
  for (int n = 2; n <= 6; ++n) {
    Solver s;
    std::vector<std::vector<Var>> p;
    add_pigeonhole(s, n + 1, n, p);
    EXPECT_EQ(s.solve(), LBool::kFalse) << "PHP(" << n + 1 << "," << n << ")";
  }
}

TEST(SolverHard, PigeonholeExactFitSat) {
  Solver s;
  std::vector<std::vector<Var>> p;
  add_pigeonhole(s, 5, 5, p);
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

TEST(SolverAssumptions, AssumptionFlipsResult) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  ASSERT_TRUE(s.add_clause({Lit::pos(a), Lit::pos(b)}));
  const Lit na = Lit::neg(a), nb = Lit::neg(b);
  const std::vector<Lit> both = {na, nb};
  EXPECT_EQ(s.solve(both), LBool::kFalse);
  // Solver must remain usable after an assumption-UNSAT answer.
  EXPECT_TRUE(s.okay());
  const std::vector<Lit> one = {na};
  EXPECT_EQ(s.solve(one), LBool::kTrue);
  EXPECT_EQ(s.model_value(b), LBool::kTrue);
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

TEST(SolverAssumptions, ContradictoryAssumptions) {
  Solver s;
  const Var a = s.new_var();
  const std::vector<Lit> contra = {Lit::pos(a), Lit::neg(a)};
  EXPECT_EQ(s.solve(contra), LBool::kFalse);
  EXPECT_TRUE(s.okay());
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

TEST(SolverIncremental, ClausesBetweenSolves) {
  Solver s;
  std::vector<Var> x;
  for (int i = 0; i < 8; ++i) x.push_back(s.new_var());
  // At least one of each pair.
  for (int i = 0; i < 8; i += 2)
    ASSERT_TRUE(s.add_clause({Lit::pos(x[i]), Lit::pos(x[i + 1])}));
  EXPECT_EQ(s.solve(), LBool::kTrue);
  // Progressively forbid positives; stays SAT until fully blocked.
  for (int i = 0; i < 8; i += 2) {
    s.add_clause({Lit::neg(x[i])});
    EXPECT_EQ(s.solve(), LBool::kTrue) << "after forbidding x" << i;
    EXPECT_EQ(s.model_value(x[i + 1]), LBool::kTrue);
  }
  s.add_clause({Lit::neg(x[1])});
  EXPECT_EQ(s.solve(), LBool::kFalse);
}

TEST(SolverIncremental, NewVarsBetweenSolves) {
  Solver s;
  const Var a = s.new_var();
  ASSERT_TRUE(s.add_clause({Lit::pos(a)}));
  EXPECT_EQ(s.solve(), LBool::kTrue);
  const Var b = s.new_var();
  ASSERT_TRUE(s.add_clause({Lit::neg(a), Lit::pos(b)}));
  EXPECT_EQ(s.solve(), LBool::kTrue);
  EXPECT_EQ(s.model_value(b), LBool::kTrue);
}

TEST(SolverBudget, ConflictBudgetReturnsUndef) {
  Solver s;
  std::vector<std::vector<Var>> p;
  add_pigeonhole(s, 9, 8, p);  // hard enough to exceed a tiny budget
  s.set_conflict_budget(10);
  EXPECT_EQ(s.solve(), LBool::kUndef);
  s.clear_budgets();
  EXPECT_EQ(s.solve(), LBool::kFalse);
}

// Property test: random 3-SAT instances cross-checked against brute force.
class RandomCnfTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RandomCnfTest, AgreesWithBruteForce) {
  std::mt19937 rng(GetParam());
  for (int round = 0; round < 40; ++round) {
    const int n = 4 + static_cast<int>(rng() % 10);          // 4..13 vars
    const int m = static_cast<int>(n * (3.0 + (rng() % 30) / 10.0));  // ratio 3..6
    Cnf cnf;
    for (int c = 0; c < m; ++c) {
      std::vector<Lit> clause;
      for (int k = 0; k < 3; ++k) {
        clause.emplace_back(static_cast<Var>(rng() % n), (rng() & 1) != 0);
      }
      cnf.push_back(clause);
    }
    Solver s;
    for (int i = 0; i < n; ++i) s.new_var();
    bool ok = true;
    for (const auto& clause : cnf) ok = s.add_clause(clause) && ok;
    const bool expected = brute_force_sat(n, cnf);
    if (!ok) {
      EXPECT_FALSE(expected);
      continue;
    }
    const LBool got = s.solve();
    ASSERT_NE(got, LBool::kUndef);
    EXPECT_EQ(got == LBool::kTrue, expected) << "n=" << n << " m=" << m;
    if (got == LBool::kTrue) {
      EXPECT_TRUE(model_satisfies(s, cnf));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCnfTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// Property: incremental solving (adding clauses one batch at a time with a
// solve() in between) must agree with solving the whole formula at once.
class IncrementalEquivalenceTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(IncrementalEquivalenceTest, MatchesMonolithic) {
  std::mt19937 rng(GetParam() * 7919u);
  for (int round = 0; round < 15; ++round) {
    const int n = 5 + static_cast<int>(rng() % 8);
    const int m = 4 * n;
    Cnf cnf;
    for (int c = 0; c < m; ++c) {
      std::vector<Lit> clause;
      for (int k = 0; k < 3; ++k)
        clause.emplace_back(static_cast<Var>(rng() % n), (rng() & 1) != 0);
      cnf.push_back(clause);
    }
    Solver inc;
    for (int i = 0; i < n; ++i) inc.new_var();
    bool inc_ok = true;
    LBool inc_result = LBool::kTrue;
    for (std::size_t c = 0; c < cnf.size(); ++c) {
      inc_ok = inc.add_clause(cnf[c]) && inc_ok;
      if (c % 7 == 6 && inc_ok) inc_result = inc.solve();
      if (!inc_ok) break;
    }
    if (inc_ok) inc_result = inc.solve();
    const bool expected = brute_force_sat(n, cnf);
    const bool got = inc_ok && inc_result == LBool::kTrue;
    EXPECT_EQ(got, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalEquivalenceTest,
                         ::testing::Values(1u, 2u, 4u, 6u));

// Property: solving under assumptions {l} must match solving with l added
// as a unit clause, for random instances and random assumption sets.
class AssumptionEquivalenceTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(AssumptionEquivalenceTest, MatchesUnitClauses) {
  std::mt19937 rng(GetParam() * 104729u);
  for (int round = 0; round < 15; ++round) {
    const int n = 6 + static_cast<int>(rng() % 6);
    const int m = 3 * n;
    Cnf cnf;
    for (int c = 0; c < m; ++c) {
      std::vector<Lit> clause;
      for (int k = 0; k < 3; ++k)
        clause.emplace_back(static_cast<Var>(rng() % n), (rng() & 1) != 0);
      cnf.push_back(clause);
    }
    std::vector<Lit> assumps;
    const int num_assumps = 1 + static_cast<int>(rng() % 3);
    for (int k = 0; k < num_assumps; ++k)
      assumps.emplace_back(static_cast<Var>(rng() % n), (rng() & 1) != 0);

    Solver with_assumps;
    for (int i = 0; i < n; ++i) with_assumps.new_var();
    bool ok1 = true;
    for (const auto& clause : cnf) ok1 = with_assumps.add_clause(clause) && ok1;

    Solver with_units;
    for (int i = 0; i < n; ++i) with_units.new_var();
    bool ok2 = true;
    for (const auto& clause : cnf) ok2 = with_units.add_clause(clause) && ok2;
    for (const Lit l : assumps) ok2 = with_units.add_clause({l}) && ok2;

    const bool r1 = ok1 && with_assumps.solve(assumps) == LBool::kTrue;
    const bool r2 = ok2 && with_units.solve() == LBool::kTrue;
    EXPECT_EQ(r1, r2);
    // The assumption solver must stay reusable regardless of the answer.
    if (ok1) {
      EXPECT_EQ(with_assumps.solve() == LBool::kTrue, brute_force_sat(n, cnf));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssumptionEquivalenceTest,
                         ::testing::Values(3u, 9u, 27u, 81u));

TEST(SolverStats, CountersAdvance) {
  Solver s;
  std::vector<std::vector<Var>> p;
  add_pigeonhole(s, 7, 6, p);
  ASSERT_EQ(s.solve(), LBool::kFalse);
  EXPECT_GT(s.stats().conflicts, 0u);
  EXPECT_GT(s.stats().decisions, 0u);
  EXPECT_GT(s.stats().propagations, 0u);
  EXPECT_EQ(s.stats().solve_calls, 1u);
}

TEST(SolverStress, ClauseDbIsReducedOnLongRuns) {
  // A hard instance must trigger restarts and learnt-clause deletion, and
  // the answer must still be correct.
  Solver s;
  std::vector<std::vector<Var>> p;
  add_pigeonhole(s, 9, 8, p);
  ASSERT_EQ(s.solve(), LBool::kFalse);
  EXPECT_GT(s.stats().restarts, 0u);
  EXPECT_GT(s.stats().learnt_clauses, 1000u);
  EXPECT_GT(s.stats().removed_clauses, 0u);
  EXPECT_GT(s.stats().minimized_literals, 0u);
}

TEST(SolverStress, RestartPoliciesAgreeOnAnswers) {
  for (const auto policy :
       {Solver::RestartPolicy::kLuby, Solver::RestartPolicy::kGlucose,
        Solver::RestartPolicy::kAlternating}) {
    Solver unsat_solver;
    unsat_solver.set_restart_policy(policy);
    std::vector<std::vector<Var>> p;
    add_pigeonhole(unsat_solver, 6, 5, p);
    EXPECT_EQ(unsat_solver.solve(), LBool::kFalse);

    Solver sat_solver;
    sat_solver.set_restart_policy(policy);
    std::vector<std::vector<Var>> q;
    add_pigeonhole(sat_solver, 6, 6, q);
    EXPECT_EQ(sat_solver.solve(), LBool::kTrue);
  }
}

TEST(SolverPolarity, InitialPhaseIsHonoredWhenFree) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  // No constraints relate a and b; suggested phases should surface.
  s.add_clause({Lit::pos(a), Lit::pos(b)});
  s.set_polarity(a, true);
  s.set_polarity(b, true);
  ASSERT_EQ(s.solve(), LBool::kTrue);
  EXPECT_EQ(s.model_value(a), LBool::kTrue);
  EXPECT_EQ(s.model_value(b), LBool::kTrue);
}

}  // namespace
}  // namespace olsq2::sat
