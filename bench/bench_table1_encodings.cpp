// Table I reproduction: runtime comparison of the six variable-encoding
// configurations on satisfiable layout synthesis instances.
//
//   OLSQ(int)       baseline formulation, one-hot (direct) variables
//   OLSQ(bv)        baseline formulation, bit-vector variables
//   OLSQ2(int)      succinct formulation, one-hot variables
//   OLSQ2(EUF+int)  succinct + inverse-function injectivity, one-hot
//   OLSQ2(EUF+bv)   succinct + inverse-function injectivity, bit-vector
//   OLSQ2(bv)       succinct formulation, bit-vector variables
//
// Paper scale: QAOA 16-24 qubits on 7x7/8x8 grids, T_UB = 21, 24 h limit.
// Laptop scale: QAOA 8-12 qubits on 4x4/5x5 grids, T_UB = 9. The "Ratio"
// column is the speedup against OLSQ(int), as in the paper.
#include "bench/common.h"
#include "bengen/workloads.h"
#include "device/presets.h"
#include "layout/olsq2.h"

int main() {
  using namespace olsq2;
  using namespace olsq2::bench;
  using layout::EncodingConfig;
  using layout::Formulation;
  using layout::InjectivityEncoding;
  using layout::VarEncoding;

  const double budget = case_budget_ms();
  const int t_ub = 9;

  struct Config {
    const char* name;
    EncodingConfig config;
  };
  const std::vector<Config> configs = {
      {"OLSQ(int)",
       {Formulation::kOlsqBaseline, VarEncoding::kOneHot,
        InjectivityEncoding::kPairwise}},
      {"OLSQ(bv)",
       {Formulation::kOlsqBaseline, VarEncoding::kBinary,
        InjectivityEncoding::kPairwise}},
      {"OLSQ2(int)",
       {Formulation::kOlsq2, VarEncoding::kOneHot,
        InjectivityEncoding::kPairwise}},
      {"OLSQ2(EUF+int)",
       {Formulation::kOlsq2, VarEncoding::kOneHot,
        InjectivityEncoding::kChanneling}},
      {"OLSQ2(EUF+bv)",
       {Formulation::kOlsq2, VarEncoding::kBinary,
        InjectivityEncoding::kChanneling}},
      {"OLSQ2(bv)",
       {Formulation::kOlsq2, VarEncoding::kBinary,
        InjectivityEncoding::kPairwise}},
  };

  std::cout << "=== Table I: integer vs bit-vector vs EUF encodings ===\n"
            << "(QAOA on grid architectures, depth horizon " << t_ub
            << ", unconstrained SWAP count; budget " << budget / 1000.0
            << "s per cell; Ratio = speedup vs OLSQ(int))\n\n";

  std::vector<std::string> headers = {"grid", "qubit/gate"};
  for (const auto& c : configs) {
    headers.push_back(c.name);
    headers.push_back("Ratio");
  }
  Table table(headers, 15);

  std::vector<double> total_ratio(configs.size(), 0.0);
  std::vector<int> ratio_count(configs.size(), 0);

  for (const int side : {4, 5}) {
    const device::Device dev = device::grid(side, side);
    for (const int n : {8, 10, 12}) {
      const circuit::Circuit qaoa = bengen::qaoa_3regular(n, 1);
      const layout::Problem problem{&qaoa, &dev, 1};
      std::vector<std::string> row = {
          dev.name(),
          std::to_string(n) + "/" + std::to_string(qaoa.num_gates())};
      double baseline_ms = -1;
      for (std::size_t i = 0; i < configs.size(); ++i) {
        const layout::Result r =
            layout::solve_fixed(problem, t_ub, -1, configs[i].config, budget);
        row.push_back(fmt_ms(r.wall_ms, !r.solved));
        if (i == 0) baseline_ms = r.solved ? r.wall_ms : -1;
        if (r.solved && baseline_ms > 0) {
          const double ratio = baseline_ms / r.wall_ms;
          row.push_back(fmt_ratio(ratio));
          total_ratio[i] += ratio;
          ratio_count[i]++;
        } else {
          row.push_back("-");
        }
      }
      table.print_row(row);
    }
  }

  std::vector<std::string> avg_row = {"Avg.", ""};
  for (std::size_t i = 0; i < configs.size(); ++i) {
    avg_row.push_back("");
    avg_row.push_back(ratio_count[i] > 0
                          ? fmt_ratio(total_ratio[i] / ratio_count[i])
                          : "-");
  }
  table.print_row(avg_row);
  return 0;
}
